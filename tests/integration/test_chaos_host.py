"""Host-fault resilience end to end: poison quarantine, watchdog,
store recovery, and the ``chaos host`` / ``doctor`` CLI surface.

These are the acceptance tests of the resilience tentpole: a
deterministic crasher is quarantined after exactly ISOLATION_ATTEMPTS
fresh-pool attempts while the campaign completes degraded with blame
recorded in the run database; corrupted stores recover byte-identical;
the CLI exit-code contract (3 timeout / 4 worker / 5 degraded) holds.
"""

import json

import pytest

from repro.config import GPUConfig
from repro.harness.runner import ArchSpec
from repro.harness.sweep import JobSpec, WorkloadRef, run_jobs
from repro.resilience.chaoshost import (
    HostFaultConfig,
    HostFaultPlan,
    metrics_digest,
    smoke_campaign,
    smoke_specs,
)
from repro.resilience.quarantine import ISOLATION_ATTEMPTS, ResilienceContext
from repro.resilience.watchdog import watchdog_supported

from .test_cli_errors import run_cli


def _poison_spec():
    return JobSpec(WorkloadRef("chaos_host_poison", (16,)),
                   ArchSpec.baseline(), gpu=GPUConfig.tiny(), seed=1)


class TestPoisonQuarantine:
    def test_poison_job_quarantined_campaign_continues(self, tmp_path):
        from repro.campaign.rundb import RunDB
        from repro.campaign.runner import run_campaign

        ctx = ResilienceContext(quarantine_path=tmp_path / "blame.jsonl")
        summary = run_campaign(smoke_campaign(extra_poison=True),
                               db_path=tmp_path / "runs.db", jobs=2,
                               cache=False, resilience=ctx)
        assert summary.degraded and summary.quarantined == 1
        assert summary.jobs == 3
        [record] = ctx.quarantine.records
        assert record.workload == "chaos_host_poison"
        assert record.kind == "worker-death"
        # The acceptance contract: exactly N fresh-pool attempts, then
        # quarantine — never an endless retry loop.
        assert record.attempts == ISOLATION_ATTEMPTS
        with RunDB(tmp_path / "runs.db") as db:
            rows = db.runs()
            good = [r for r in rows if not r.quarantined]
            bad = [r for r in rows if r.quarantined]
        assert len(good) == 2 and len(bad) == 1
        assert bad[0].blame["kind"] == "worker-death"
        assert bad[0].blame["spec_hash"] == _poison_spec().spec_hash()

    def test_quarantined_spec_skipped_on_rerun(self, tmp_path):
        ctx = ResilienceContext()
        spec = _poison_spec()
        first = run_jobs([spec], jobs=1, cache=False, resilience=ctx)
        assert first == [None]
        attempts_after_first = ctx.stats.isolated_attempts
        # Second sweep with the same context: no new pools are burned.
        second = run_jobs([spec], jobs=1, cache=False, resilience=ctx)
        assert second == [None]
        assert ctx.stats.isolated_attempts == attempts_after_first

    def test_without_resilience_contract_unchanged(self):
        from repro.harness.sweep import SweepWorkerError, configured

        # Two misses keep the engine on the pool path (a single miss
        # runs in-process, where a poison job would kill *this*
        # process — exactly what armed resilience exists to prevent).
        specs = [smoke_specs()[0], _poison_spec()]
        with configured(retries=2, backoff=0.01, serial_fallback=False):
            with pytest.raises(SweepWorkerError):
                run_jobs(specs, jobs=2, cache=False)


@pytest.mark.skipif(not watchdog_supported(), reason="needs /proc")
class TestWatchdog:
    def test_stopped_worker_replaced_without_timeout(self, tmp_path):
        from repro.harness.sweep import configured

        sentinel = tmp_path / "stop-once.sentinel"
        specs = [JobSpec(WorkloadRef("chaos_host_stop_once",
                                     (str(sentinel), 48)),
                         ArchSpec.baseline(), gpu=GPUConfig.tiny(), seed=1)]
        ctx = ResilienceContext()
        with configured(watchdog=True, watchdog_interval=0.05,
                        watchdog_grace=2):
            results = run_jobs(specs, jobs=2, cache=False, timeout=60,
                               resilience=ctx)
        assert results[0] is not None
        assert ctx.stats.workers_replaced >= 1
        assert len(ctx.quarantine) == 0  # transient, not poison


class TestStoreRecovery:
    def test_cache_corruption_recovers_byte_identical(self, tmp_path):
        specs = smoke_specs()
        cache_dir = tmp_path / "cache"
        baseline = run_jobs(specs, jobs=1, cache=True,
                            cache_dir=str(cache_dir))
        entries = sorted(cache_dir.rglob("*.json"))
        assert entries
        for entry in entries:
            data = bytearray(entry.read_bytes())
            data[len(data) // 2] ^= 0x10
            entry.write_bytes(bytes(data))
        ctx = ResilienceContext()
        recovered = run_jobs(specs, jobs=1, cache=True,
                             cache_dir=str(cache_dir), resilience=ctx)
        assert metrics_digest(recovered) == metrics_digest(baseline)
        assert ctx.stats.cache_quarantined == len(entries)
        qdir = cache_dir.parent / (cache_dir.name + ".quarantine")
        assert len(list(qdir.iterdir())) == len(entries)


class TestChaosHostHarness:
    def test_plan_is_frozen_and_validated(self):
        with pytest.raises(ValueError, match="unknown chaos-host probe"):
            HostFaultConfig(probes=("stores", "nope"))
        plan = HostFaultPlan.sample(3)
        assert plan.seed == 3
        # Substreams are independent and reproducible.
        assert plan.rng(0).integers(0, 1 << 30) \
            == HostFaultPlan.sample(3).rng(0).integers(0, 1 << 30)
        assert plan.rng(0).integers(0, 1 << 30) \
            != plan.rng(1).integers(0, 1 << 30)

    def test_cli_chaos_host_smoke(self, tmp_path):
        # The cheap probes end to end through the real CLI; the full
        # battery (poison + watchdog included) runs in CI's
        # chaos-host-smoke job and via `repro chaos host --seed 0`.
        proc = run_cli("chaos", "host", "--seed", "0",
                       "--probes", "stores,enospc",
                       "--workdir", str(tmp_path), timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "chaos host PASSED" in proc.stdout
        report = json.loads(
            (tmp_path / "chaos_host_report.json").read_text())
        assert report["ok"] and report["seed"] == 0
        stores = next(p for p in report["probes"]
                      if p["probe"] == "stores")
        assert stores["byte_identical"]

    def test_cli_chaos_flat_form_still_works(self):
        proc = run_cli("chaos", "--seeds", "0")
        assert proc.returncode != 0
        assert "--seeds must be >= 1" in proc.stderr


class TestCLIExitCodes:
    def test_degraded_campaign_exits_5(self, tmp_path):
        yaml = tmp_path / "poison.yaml"
        yaml.write_text("""\
schema: repro.campaign/v1
campaign: poison_smoke
description: degraded-mode exit-code check.
defaults: {preset: tiny, seeds: [1]}
figures:
  - name: smoke
    workloads:
      - {name: atomic_sum_48, factory: atomic_sum, args: [48]}
      - {name: chaos_host_poison, factory: chaos_host_poison, args: [16]}
    archs:
      - {name: baseline, kind: baseline}
""")
        env_cmd = ["campaign", "run", str(yaml), "--db",
                   str(tmp_path / "runs.db"), "--no-cache", "--jobs", "2",
                   "--resilient"]
        proc = run_cli(*env_cmd, timeout=300)
        assert proc.returncode == 5, proc.stdout + proc.stderr
        assert "DEGRADED" in proc.stdout
        assert "quarantined: chaos_host_poison" in proc.stdout

    def test_worker_failure_exits_4(self, tmp_path, capsys):
        # In-process (configured() pins the session sweep config): with
        # serial fallback off, the poison job must surface as
        # SweepWorkerError -> exit 4, never as a raw traceback.
        from repro.cli import main
        from repro.harness.sweep import configured

        yaml = self._poison_yaml(tmp_path)
        with configured(serial_fallback=False, retries=1, backoff=0.0):
            rc = main(["campaign", "run", str(yaml), "--db",
                       str(tmp_path / "runs.db"), "--no-cache",
                       "--jobs", "2"])
        assert rc == 4
        assert "unrecoverable worker failure" in capsys.readouterr().err

    def test_sweep_timeout_exits_3(self, tmp_path, capsys):
        from repro.cli import main
        from repro.harness.sweep import configured

        yaml = self._smoke_yaml(tmp_path)
        with configured(timeout=1e-6):
            rc = main(["campaign", "run", str(yaml), "--db",
                       str(tmp_path / "runs.db"), "--no-cache",
                       "--jobs", "2"])
        assert rc == 3
        assert "sweep timeout" in capsys.readouterr().err

    @staticmethod
    def _poison_yaml(tmp_path):
        path = tmp_path / "poison.yaml"
        path.write_text("""\
schema: repro.campaign/v1
campaign: poison_smoke
description: worker-failure exit-code check.
defaults: {preset: tiny, seeds: [1]}
figures:
  - name: smoke
    workloads:
      - {name: atomic_sum_48, factory: atomic_sum, args: [48]}
      - {name: chaos_host_poison, factory: chaos_host_poison, args: [16]}
    archs:
      - {name: baseline, kind: baseline}
""")
        return path

    @staticmethod
    def _smoke_yaml(tmp_path):
        path = tmp_path / "smoke.yaml"
        path.write_text("""\
schema: repro.campaign/v1
campaign: timeout_smoke
description: timeout exit-code check.
defaults: {preset: tiny, seeds: [1]}
figures:
  - name: smoke
    workloads:
      - {name: atomic_sum_48, factory: atomic_sum, args: [48]}
    archs:
      - {name: baseline, kind: baseline}
      - {name: DAB, kind: dab}
""")
        return path

    def test_doctor_clean_exits_0_corrupt_exits_1(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_jobs(smoke_specs()[:1], jobs=1, cache=True,
                 cache_dir=str(cache_dir))
        proc = run_cli("doctor", str(cache_dir))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "all stores clean" in proc.stdout
        victim = next(iter(sorted(cache_dir.rglob("*.json"))))
        victim.write_text("{definitely not json")
        proc = run_cli("doctor", str(cache_dir), "--json", "-")
        assert proc.returncode == 1
        assert "CORRUPTION FOUND" in proc.stdout
