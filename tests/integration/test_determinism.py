"""The paper's central claim, tested end to end (Section V validation).

Under injected timing non-determinism (different jitter seeds):

* the baseline GPU produces *different* bitwise results for
  order-sensitive f32 reductions;
* every deterministic DAB variant produces *identical* bitwise results;
* GPUDet produces identical bitwise results (strong determinism).
"""

import pytest

from repro.config import GPUConfig
from repro.core.dab import BufferLevel, DABConfig
from repro.gpudet.gpudet import GPUDetConfig
from tests.integration.conftest import run_sum

SEEDS = (1, 2, 3, 4, 5)


def values_across_seeds(n=512, **kw):
    return [run_sum(n=n, seed_jitter=s, **kw)[1] for s in SEEDS]


class TestBaselineNondeterminism:
    def test_baseline_varies_across_seeds(self):
        vals = values_across_seeds(n=2048, dram_jitter=48, icnt_jitter=24)
        assert len(set(vals)) > 1, (
            "baseline GPU should produce different f32 results under "
            "different latency jitter"
        )

    def test_baseline_on_small_machine_varies(self):
        vals = values_across_seeds(n=2048, config=GPUConfig.small(),
                                   dram_jitter=48, icnt_jitter=24)
        assert len(set(vals)) > 1

    def test_dab_stable_under_heavy_jitter(self):
        # The determinism claim must hold even under the heavy jitter
        # that visibly scrambles the baseline.
        vals = values_across_seeds(n=2048, dab=DABConfig.paper_default(),
                                   dram_jitter=48, icnt_jitter=24)
        assert len(set(vals)) == 1


class TestDABDeterminism:
    @pytest.mark.parametrize("sched", ["srr", "gtrr", "gtar", "gwat"])
    def test_scheduler_level_buffers(self, sched):
        cfg = DABConfig(buffer_entries=64, scheduler=sched)
        vals = values_across_seeds(dab=cfg)
        assert len(set(vals)) == 1, f"{sched} varied across seeds: {vals}"

    def test_warp_level_buffers(self):
        vals = values_across_seeds(dab=DABConfig.warp_level())
        assert len(set(vals)) == 1

    @pytest.mark.parametrize("entries", [32, 64, 128])
    def test_capacity_sweep(self, entries):
        cfg = DABConfig(buffer_entries=entries, scheduler="gwat")
        vals = values_across_seeds(dab=cfg)
        assert len(set(vals)) == 1

    def test_fusion_is_deterministic(self):
        cfg = DABConfig(buffer_entries=64, scheduler="gwat", fusion=True)
        vals = values_across_seeds(dab=cfg)
        assert len(set(vals)) == 1

    def test_coalescing_is_deterministic(self):
        cfg = DABConfig(buffer_entries=64, scheduler="gwat", fusion=True,
                        coalescing=True)
        vals = values_across_seeds(dab=cfg)
        assert len(set(vals)) == 1

    def test_offset_flushing_is_deterministic(self):
        cfg = DABConfig(buffer_entries=64, scheduler="gwat", fusion=True,
                        offset_flush=True)
        vals = values_across_seeds(dab=cfg)
        assert len(set(vals)) == 1

    def test_paper_default_on_small_machine(self):
        vals = values_across_seeds(dab=DABConfig.paper_default(),
                                   config=GPUConfig.small())
        assert len(set(vals)) == 1

    def test_dab_equals_its_own_repeat(self):
        a = run_sum(n=256, seed_jitter=9, dab=DABConfig.paper_default())[1]
        b = run_sum(n=256, seed_jitter=9, dab=DABConfig.paper_default())[1]
        assert a == b


class TestGPUDetDeterminism:
    def test_gpudet_bitwise_stable(self):
        vals = values_across_seeds(gpudet=GPUDetConfig())
        assert len(set(vals)) == 1

    def test_gpudet_quantum_size_changes_nothing_functional(self):
        a = values_across_seeds(n=256, gpudet=GPUDetConfig(quantum_instrs=50))
        b = values_across_seeds(n=256, gpudet=GPUDetConfig(quantum_instrs=400))
        assert len(set(a)) == 1 and len(set(b)) == 1


class TestCrossVariantConsistency:
    def test_deterministic_variants_each_pick_one_order(self):
        # Different deterministic architectures may legally produce
        # *different* f32 results (different deterministic orders), but
        # each must be self-consistent.  Also sanity: all results are
        # close to the f64 reference.
        import numpy as np

        results = {}
        for label, kw in (
            ("gwat", {"dab": DABConfig(buffer_entries=64, scheduler="gwat")}),
            ("srr", {"dab": DABConfig(buffer_entries=64, scheduler="srr")}),
            ("gpudet", {"gpudet": GPUDetConfig()}),
        ):
            vals = values_across_seeds(n=256, **kw)
            assert len(set(vals)) == 1, label
            results[label] = vals[0]
        _, _, data = run_sum(n=256)
        ref = float(np.sum(data.astype(np.float64)))
        for label, v in results.items():
            assert v == pytest.approx(ref, rel=1e-2, abs=1e-2), label
