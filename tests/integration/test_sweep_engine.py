"""Executor semantics: ordering, caching, timeouts, worker death, obs."""

import os
import time

import pytest

from repro.config import GPUConfig
from repro.harness import experiments
from repro.harness.runner import ArchSpec
from repro.harness import sweep
from repro.harness.sweep import (
    JobSpec,
    SweepError,
    SweepTimeoutError,
    WorkloadRef,
    register_workload,
    run_jobs,
)
from repro.obs import ObsConfig
from repro.workloads.microbench import build_atomic_sum

TINY = GPUConfig.tiny()

# Hostile factories for the failure paths.  Module-level so fork-started
# workers inherit them; the pid guard makes them misbehave only inside
# a pool worker, never in the parent.
_PARENT = os.getpid()


def _bomb_factory(n=16):
    if os.getpid() != _PARENT:
        os._exit(13)  # simulates a worker crash (OOM-kill, segfault)
    return build_atomic_sum(n)


def _sleep_factory(n=16):
    if os.getpid() != _PARENT:
        time.sleep(60)
    return build_atomic_sum(n)


register_workload("_test_bomb", _bomb_factory)
register_workload("_test_sleep", _sleep_factory)


def _specs(sizes=(16, 24, 32, 48), factory="atomic_sum"):
    return [
        JobSpec(WorkloadRef(factory, (n,)), arch, gpu=TINY)
        for n in sizes
        for arch in (ArchSpec.baseline(), ArchSpec.make_dab())
    ]


def _digests(results):
    return [(r.label, r.cycles, r.extra["output_digest"]) for r in results]


class TestOrdering:
    def test_parallel_equals_serial(self):
        specs = _specs()
        serial = run_jobs(specs, jobs=1, cache=False)
        parallel = run_jobs(specs, jobs=3, cache=False)
        assert _digests(parallel) == _digests(serial)

    def test_experiment_table_byte_identical(self):
        with sweep.configured(jobs=1, cache=False):
            serial = experiments.fig02_locks(sizes=(32,)).render()
        with sweep.configured(jobs=2, cache=False):
            parallel = experiments.fig02_locks(sizes=(32,)).render()
        assert parallel == serial

    def test_determinism_validation_through_engine(self):
        with sweep.configured(jobs=2, cache=False):
            t = experiments.determinism_validation(seeds=(1, 2))
        assert t.data["baseline"]["deterministic"] is False
        assert t.data["DAB-GWAT-64-AF-Coal"]["deterministic"] is True
        assert t.data["GPUDet"]["deterministic"] is True


class TestCaching:
    def test_second_run_hits(self, tmp_path):
        specs = _specs(sizes=(16, 24))
        cold = run_jobs(specs, jobs=1, cache=True, cache_dir=tmp_path)
        warm = run_jobs(specs, jobs=1, cache=True, cache_dir=tmp_path)
        assert not any(r.extra.get("cache_hit") for r in cold)
        assert all(r.extra["cache_hit"] for r in warm)
        assert _digests(warm) == _digests(cold)

    def test_partial_hits_fill_misses(self, tmp_path):
        first = _specs(sizes=(16,))
        run_jobs(first, jobs=1, cache=True, cache_dir=tmp_path)
        both = _specs(sizes=(16, 24))
        mixed = run_jobs(both, jobs=1, cache=True, cache_dir=tmp_path)
        hits = [bool(r.extra.get("cache_hit")) for r in mixed]
        assert hits == [True, True, False, False]

    def test_no_cache_never_writes(self, tmp_path):
        run_jobs(_specs(sizes=(16,)), jobs=1, cache=False,
                 cache_dir=tmp_path)
        assert list(tmp_path.iterdir()) == []


class TestFailurePaths:
    def test_worker_death_falls_back_in_process(self):
        specs = _specs(sizes=(16, 24), factory="_test_bomb")
        results = run_jobs(specs, jobs=2, cache=False)
        # in the parent the pid guard is inert, so the fallback works
        assert _digests(results) == _digests(
            run_jobs(_specs(sizes=(16, 24)), jobs=1, cache=False))

    def test_timeout_raises_after_retry(self):
        specs = _specs(sizes=(16, 24), factory="_test_sleep")
        t0 = time.monotonic()
        with pytest.raises(SweepTimeoutError):
            run_jobs(specs, jobs=2, cache=False, timeout=1.0)
        # two attempts at ~1s each, not 60s waiting on sleepers
        assert time.monotonic() - t0 < 30

    def test_app_exception_propagates(self):
        bad = [JobSpec(WorkloadRef("conv", ("no_such_layer",)),
                       ArchSpec.baseline(), gpu=TINY)]
        with pytest.raises(Exception):
            run_jobs(bad, jobs=1, cache=False)


class TestObservability:
    def test_obs_with_jobs_gt_1_rejected(self):
        obs = ObsConfig(trace=True)
        with pytest.raises(SweepError):
            run_jobs(_specs(sizes=(16,)), jobs=2, cache=False, obs=obs)

    def test_obs_serial_collects_traces(self, tmp_path):
        obs = ObsConfig(trace=True)
        results = run_jobs(_specs(sizes=(16,)), jobs=1, cache=True,
                           cache_dir=tmp_path, obs=obs)
        assert all(r.obs is not None and len(r.obs.tracer) > 0
                   for r in results)
        # traced runs bypass the cache entirely
        assert list(tmp_path.iterdir()) == []
