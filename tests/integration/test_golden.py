"""Golden-snapshot regression tests for the reference oracle.

Each file under ``tests/golden/`` pins one conformance workload's
oracle observables: per-buffer memory digests, the reduction-commit
summary (per ``(addr, opcode)`` count plus an operand-multiset digest),
and commit/kernel counts.  Any semantic change to the ISA interpreter,
a workload kernel, or the graph generators shows up as a named drift —
buffer by buffer, address by address — instead of a silent shift in
downstream conformance results.

Intentional changes are re-pinned with::

    python -m pytest tests/integration/test_golden.py --update-golden
"""

import hashlib
import json
import pathlib

import pytest

from repro.check.oracle import run_oracle
from repro.check.presets import DIFF_WORKLOADS

GOLDEN_DIR = pathlib.Path(__file__).parents[1] / "golden"


def oracle_snapshot(name: str) -> dict:
    """Run the oracle for one preset and condense it to stable digests."""
    res = run_oracle(DIFF_WORKLOADS[name].ref)
    buffers = {
        bname: hashlib.sha256(arr.tobytes()).hexdigest()
        for bname, arr in sorted(res.memory.items())
    }
    red_summary = {}
    for (addr, opcode), stat in sorted(res.red_summary().items()):
        ops_digest = hashlib.sha256(
            json.dumps(stat.ops_key).encode()).hexdigest()[:16]
        red_summary[f"{addr:#x}:{opcode}"] = [stat.count, ops_digest]
    return {
        "schema": "repro.golden/v1",
        "workload": res.workload,
        "buffers": buffers,
        "red_summary": red_summary,
        "red_commits": len(res.red_ops),
        "atoms": res.atom_count,
        "kernels": res.kernels,
    }


def drift_diff(golden: dict, current: dict) -> str:
    """Human-readable field-by-field drift between two snapshots."""
    lines = []
    for section in ("buffers", "red_summary"):
        old, new = golden.get(section, {}), current.get(section, {})
        for key in sorted(set(old) | set(new)):
            if old.get(key) != new.get(key):
                lines.append(f"  {section}[{key}]: "
                             f"{old.get(key, '<absent>')} -> "
                             f"{new.get(key, '<absent>')}")
    for key in ("workload", "red_commits", "atoms", "kernels"):
        if golden.get(key) != current.get(key):
            lines.append(f"  {key}: {golden.get(key)} -> {current.get(key)}")
    return "\n".join(lines) or "  (snapshots identical)"


@pytest.mark.parametrize("name", sorted(DIFF_WORKLOADS))
def test_oracle_golden(name, request):
    path = GOLDEN_DIR / f"{name}.json"
    current = oracle_snapshot(name)
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"no golden snapshot for {name!r}; create it with "
        f"`python -m pytest {__file__} --update-golden`"
    )
    golden = json.loads(path.read_text())
    assert golden == current, (
        f"oracle snapshot for {name!r} drifted from {path}:\n"
        + drift_diff(golden, current)
        + "\n(if intentional, re-pin with --update-golden)"
    )
