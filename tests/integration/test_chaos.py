"""End-to-end chaos robustness: the `repro chaos` campaign, corruption
detection through the full simulator stack, journal kill-and-resume
(real SIGKILL, byte-identical resumed table), and failing-job
attribution on sweep errors."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.config import GPUConfig
from repro.faults import FaultConfig, FaultPlan, InvariantViolation
from repro.harness.runner import ArchSpec, run_workload
from repro.harness.sweep import (
    JobSpec,
    SweepTimeoutError,
    WorkloadRef,
    register_workload,
    run_jobs,
)
from repro.workloads.microbench import build_atomic_sum, build_order_sensitive

TINY = GPUConfig.tiny()
_PARENT = os.getpid()
_REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _chaos_sleep_factory(n=16):
    if os.getpid() != _PARENT:
        time.sleep(60)
    return build_atomic_sum(n)


register_workload("_chaos_sleep", _chaos_sleep_factory)


class TestChaosCampaign:
    def test_cli_campaign_passes(self, capsys):
        from repro.cli import main

        rc = main(["chaos", "--seeds", "3"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "bitwise identical" in out
        assert "diverged as expected" in out
        assert "drop" in out and "dup" in out
        assert "PASSED" in out

    def test_corruption_probe_detected_through_stack(self):
        # Not via the CLI: assert on the structured violation payload.
        with pytest.raises(InvariantViolation) as ei:
            run_workload(lambda: build_order_sensitive(256),
                         ArchSpec.make_dab(), gpu_config=TINY,
                         faults=FaultPlan(7, FaultConfig(drop_prob=0.15)),
                         invariants=True)
        v = ei.value
        assert v.invariant == "flush_counts"
        assert v.unit.startswith("partition.")
        assert v.fault is not None and "drop" in v.fault

    def test_violation_survives_worker_boundary(self):
        # Same probe, but through a jobs=2 process pool: the
        # InvariantViolation is pickled back from the worker, and the
        # structured fields — not a flattened message or an opaque
        # unpickling TypeError — must reach the caller.
        specs = [
            JobSpec(WorkloadRef("order_sensitive", kwargs={"n": 256}),
                    ArchSpec.make_dab(), gpu=TINY,
                    faults=FaultConfig(drop_prob=0.15), fault_seed=7,
                    invariants=True),
            JobSpec(WorkloadRef("atomic_sum", kwargs={"n": 64}),
                    ArchSpec.make_dab(), gpu=TINY),
        ]
        with pytest.raises(InvariantViolation) as ei:
            run_jobs(specs, jobs=2, cache=False)
        v = ei.value
        assert v.invariant == "flush_counts"
        assert v.unit.startswith("partition.")
        assert v.fault is not None and "drop" in v.fault

    def test_timing_chaos_preserves_dab_output(self):
        plain = run_workload(lambda: build_order_sensitive(128),
                             ArchSpec.make_dab(), gpu_config=TINY)
        chaotic = run_workload(lambda: build_order_sensitive(128),
                               ArchSpec.make_dab(), gpu_config=TINY,
                               faults=FaultPlan.sample(17), invariants=True)
        assert chaotic.extra["output_digest"] == plain.extra["output_digest"]
        assert chaotic.extra["faults_injected"] > 0
        assert chaotic.extra["invariant_checks"] > 0
        # ...but faults are not free: timing is allowed to move.
        assert chaotic.cycles >= plain.cycles


_CAMPAIGN = """\
import sys
from repro.config import GPUConfig
from repro.harness.runner import ArchSpec
from repro.harness.sweep import JobSpec, WorkloadRef, run_jobs

specs = [
    JobSpec(WorkloadRef("atomic_sum", (n,)), arch, gpu=GPUConfig.tiny())
    for n in range(16, 112, 8)
    for arch in (ArchSpec.baseline(), ArchSpec.make_dab())
]
results = run_jobs(specs, jobs=1, cache=False, journal=sys.argv[1])
for r in results:
    print(r.label, r.cycles, r.extra["output_digest"])
hits = sum(bool(r.extra.get("journal_hit")) for r in results)
print("journal hits:", hits, file=sys.stderr)
"""


class TestJournalKillAndResume:
    def _run(self, script, journal, **kw):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(_REPO, "src")
        return subprocess.run([sys.executable, str(script), str(journal)],
                              capture_output=True, text=True, env=env,
                              timeout=300, **kw)

    def test_sigkilled_campaign_resumes_byte_identical(self, tmp_path):
        script = tmp_path / "campaign.py"
        script.write_text(_CAMPAIGN)
        journal = tmp_path / "resume.jsonl"

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(_REPO, "src")
        proc = subprocess.Popen(
            [sys.executable, str(script), str(journal)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env)
        # Wait for >=2 durably journaled jobs, then kill -9 mid-campaign.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if journal.exists() and \
                    journal.read_bytes().count(b"\n") >= 3:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.01)
        killed_running = proc.poll() is None
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
        assert journal.exists()
        journaled_before = journal.read_bytes().count(b"\n")
        assert journaled_before >= 3  # header + >=2 completed jobs

        resumed = self._run(script, journal)
        assert resumed.returncode == 0, resumed.stderr
        pristine = self._run(script, tmp_path / "fresh.jsonl")
        assert pristine.returncode == 0, pristine.stderr

        # The resumed table is byte-identical to the uninterrupted one.
        assert resumed.stdout == pristine.stdout
        if killed_running:
            # The resume actually restored journaled work.
            hits = int(resumed.stderr.strip().rsplit(" ", 1)[-1])
            assert hits >= 2

    def test_rerun_after_completion_is_all_hits(self, tmp_path):
        script = tmp_path / "campaign.py"
        script.write_text(_CAMPAIGN)
        journal = tmp_path / "full.jsonl"
        first = self._run(script, journal)
        assert first.returncode == 0, first.stderr
        second = self._run(script, journal)
        assert second.returncode == 0, second.stderr
        assert second.stdout == first.stdout
        n_jobs = len(first.stdout.splitlines())
        assert second.stderr.strip().endswith(f"journal hits: {n_jobs}")


class TestErrorAttribution:
    def test_timeout_error_names_jobs(self):
        specs = [
            JobSpec(WorkloadRef("_chaos_sleep", (n,)), ArchSpec.baseline(),
                    gpu=TINY)
            for n in (16, 24)
        ]
        with pytest.raises(SweepTimeoutError) as ei:
            run_jobs(specs, jobs=2, cache=False, timeout=1.0)
        err = ei.value
        assert err.jobs, "timeout error must carry failing-job refs"
        for ref in err.jobs:
            assert ref["workload"] == "_chaos_sleep"
            assert ref["spec_hash"] == specs[ref["index"]].spec_hash()
        # The message itself is actionable: names workload + hash prefix.
        assert "_chaos_sleep" in str(err)
        assert err.jobs[0]["spec_hash"][:16] in str(err)
