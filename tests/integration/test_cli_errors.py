"""CLI error paths: exit codes AND stderr text, end to end.

Each case runs ``python -m repro`` in a subprocess — the same surface a
shell script or CI job sees — and asserts both the exit status and the
diagnostic, so a refactor can't silently turn a crisp usage error into
a traceback (or into a silent success).
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).parents[2]


def run_cli(*argv, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, timeout=timeout, env=env,
        cwd=str(REPO),
    )


class TestUsageErrors:
    def test_unknown_workload_ref(self):
        proc = run_cli("run", "--workload", "no_such_thing")
        assert proc.returncode != 0
        assert "unknown workload 'no_such_thing'" in proc.stderr
        assert "repro list" in proc.stderr

    def test_audit_unknown_workload_ref(self):
        proc = run_cli("audit", "--workload", "bogus:42")
        assert proc.returncode != 0
        assert "unknown workload 'bogus:42'" in proc.stderr

    def test_audit_trace_digest_rejects_parallel_jobs(self):
        proc = run_cli("audit", "--workload", "microbench:64",
                       "--trace-digest", "--jobs", "2")
        assert proc.returncode != 0
        assert "--trace-digest requires --jobs 1" in proc.stderr

    def test_chaos_zero_seeds(self):
        proc = run_cli("chaos", "--seeds", "0")
        assert proc.returncode != 0
        assert "--seeds must be >= 1" in proc.stderr

    def test_check_diff_unknown_workload(self):
        proc = run_cli("check", "diff", "--workloads", "atomic_sum,nope")
        assert proc.returncode != 0
        assert "check diff:" in proc.stderr
        assert "'nope'" in proc.stderr
        # The diagnostic must teach the valid vocabulary.
        assert "atomic_sum" in proc.stderr and "pagerank" in proc.stderr

    def test_check_drf_unknown_workload(self):
        proc = run_cli("check", "drf", "--workload", "never_heard_of_it")
        assert proc.returncode != 0
        assert "check drf: unknown workload(s)" in proc.stderr
        assert "lock_sum_racy" in proc.stderr

    def test_check_requires_subcommand(self):
        proc = run_cli("check")
        assert proc.returncode == 2
        assert "check" in proc.stderr

    def test_unknown_experiment(self):
        proc = run_cli("experiment", "fig99")
        assert proc.returncode != 0
        assert "unknown experiment 'fig99'" in proc.stderr

    def test_bad_trace_category(self):
        proc = run_cli("run", "--workload", "microbench:64",
                       "--preset", "tiny", "--trace", "/dev/null",
                       "--trace-categories", "nonsense")
        assert proc.returncode != 0
        assert "unknown trace categories" in proc.stderr


class TestConformanceExitCodes:
    """Pass/fail semantics of the conformance commands themselves."""

    def test_check_drf_racy_control_exits_nonzero(self):
        proc = run_cli("check", "drf", "--workload", "lock_sum_racy",
                       timeout=300)
        assert proc.returncode == 1
        assert "RACY" in proc.stdout
        assert "race certification FAILED" in proc.stdout

    def test_check_drf_clean_workload_exits_zero(self):
        proc = run_cli("check", "drf", "--workload", "atomic_sum",
                       timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "DRF" in proc.stdout
