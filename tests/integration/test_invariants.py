"""Cross-cutting simulator invariants checked on live runs."""

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.core.dab import DABConfig
from repro.sim.gpu import GPU
from repro.sim.nondet import JitterSource
from repro.workloads.bc import build_bc
from repro.workloads.convolution import build_conv
from repro.workloads.graphs import generate
from repro.workloads.microbench import build_multi_target


def run(wl, dab=None, config=None, seed=1):
    gpu = GPU(config or GPUConfig.small(), wl.mem, dab=dab,
              jitter=JitterSource(seed))
    res = wl.drive(gpu)
    return gpu, res


class TestBufferInvariants:
    def test_all_buffers_empty_after_run(self):
        wl = build_multi_target(2048, 32)
        gpu, _ = run(wl, dab=DABConfig.paper_default())
        for sm in gpu.sms:
            for buf in sm.buffers:
                assert not buf.non_empty
                assert not buf.full

    def test_flush_reorder_buffers_drained(self):
        wl = build_conv("cnv2_2")
        gpu, _ = run(wl, dab=DABConfig.paper_default())
        for p in gpu.partitions:
            assert p.flush_round_complete
            assert p.flush_reorder.occupancy == 0

    def test_flushed_entries_equal_inserted_minus_fused(self):
        wl = build_multi_target(2048, 32)
        gpu, res = run(wl, dab=DABConfig(buffer_entries=64, scheduler="gwat",
                                         fusion=True))
        inserted = sum(b.stats.inserts for sm in gpu.sms for b in sm.buffers)
        fused = sum(b.stats.fused for sm in gpu.sms for b in sm.buffers)
        flushed = sum(b.stats.flushed_entries
                      for sm in gpu.sms for b in sm.buffers)
        assert flushed == inserted - fused

    def test_every_red_reaches_memory(self):
        wl = build_multi_target(2048, 32)
        gpu, res = run(wl, dab=DABConfig(buffer_entries=64, scheduler="gwat"))
        applied = sum(p.stats.flush_entries for p in gpu.partitions)
        inserted = sum(b.stats.inserts for sm in gpu.sms for b in sm.buffers)
        assert applied == inserted


class TestCounterInvariants:
    def test_no_outstanding_work_after_run(self):
        wl = build_bc(generate("FA", 64, seed=2))
        gpu, _ = run(wl)
        assert gpu.pending_atomic_packets == 0
        assert gpu.pending_store_acks == 0
        for sm in gpu.sms:
            for w in sm.all_warps():
                assert w.outstanding_loads == 0
                assert w.outstanding_stores == 0
                assert w.outstanding_atoms == 0
                assert w.done

    def test_instruction_counts_match_warp_totals(self):
        wl = build_multi_target(1024, 16)
        gpu, res = run(wl)
        warp_instrs = sum(w.dyn_instrs for sm in gpu.sms
                          for w in sm.all_warps())
        # all warps still resident for a single kernel -> exact match
        assert warp_instrs == res.instructions

    def test_atomics_counted_once_per_warp_instruction(self):
        wl = build_multi_target(1024, 16)
        gpu, res = run(wl)
        warp_atomics = sum(w.dyn_atomics for sm in gpu.sms
                           for w in sm.all_warps())
        assert warp_atomics == res.atomics

    def test_l1_stats_conserve(self):
        wl = build_bc(generate("FA", 64, seed=2))
        gpu, _ = run(wl)
        for sm in gpu.sms:
            s = sm.l1.stats
            assert s.hits + s.misses == s.accesses


class TestSchedulingInvariants:
    def test_gwat_single_token_per_scheduler(self):
        wl = build_multi_target(2048, 32)
        gpu, _ = run(wl, dab=DABConfig(buffer_entries=64, scheduler="gwat"))
        for sm in gpu.sms:
            for sched in sm.schedulers:
                tok = sched.token_slot
                assert tok is None or 0 <= tok < sched.num_slots

    def test_dispatch_is_static_under_dab(self):
        # same workload, different seeds: identical warp->SM placement
        placements = set()
        for seed in (1, 2):
            wl = build_bc(generate("FA", 64, seed=2))
            gpu, _ = run(wl, dab=DABConfig.paper_default(), seed=seed)
            layout = tuple(
                (sm.sm_id, w.cta.cta_id, w.scheduler_id, w.hw_slot)
                for sm in gpu.sms for w in sm.all_warps()
            )
            placements.add(layout)
        assert len(placements) == 1
