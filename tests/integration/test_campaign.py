"""End-to-end campaign service: CLI runs, replay provenance, and the
dashboard's byte-determinism guarantees."""

import json

import pytest

from repro.campaign import (
    RunDB,
    load_campaign,
    render_report,
    run_campaign,
)
from repro.cli import main

FP = "c" * 64

CAMPAIGN_YAML = """\
schema: repro.campaign/v1
campaign: itest
defaults:
  preset: tiny
  seeds: [1]
figures:
  - name: smoke
    title: "Integration smoke"
    normalize: baseline
    workloads:
      - {name: atomic_sum_48, factory: atomic_sum, args: [48]}
    archs:
      - {name: baseline, kind: baseline}
      - {name: DAB, kind: dab}
"""


@pytest.fixture()
def campaign_yaml(tmp_path):
    path = tmp_path / "itest.yaml"
    path.write_text(CAMPAIGN_YAML)
    return path


def _render(db_path):
    with RunDB(db_path) as db:
        return render_report(db, fingerprint=FP)


class TestCampaignRun:
    def test_cli_run_records_every_job(self, campaign_yaml, tmp_path,
                                       capsys):
        db_path = tmp_path / "runs.db"
        rc = main(["campaign", "run", str(campaign_yaml),
                   "--db", str(db_path), "--jobs", "1", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 job(s) recorded" in out
        with RunDB(db_path) as db:
            rows = db.runs()
            meta = db.figures()
        assert [(r.workload, r.arch) for r in rows] == \
            [("atomic_sum_48", "baseline"), ("atomic_sum_48", "DAB")]
        assert all(r.output_digest and r.spec_hash for r in rows)
        assert meta[("itest", "smoke")]["normalize"] == "baseline"

    def test_warm_rerun_replays_from_cache(self, campaign_yaml, tmp_path):
        camp = load_campaign(campaign_yaml)
        db_path = tmp_path / "runs.db"
        cache_dir = tmp_path / "cache"
        cold = run_campaign(camp, db_path=db_path, jobs=1,
                            cache=True, cache_dir=str(cache_dir))
        warm = run_campaign(camp, db_path=db_path, jobs=1,
                            cache=True, cache_dir=str(cache_dir))
        assert cold.simulated == 2 and cold.cache_hits == 0
        assert warm.all_replayed and warm.cache_hits == 2
        with RunDB(db_path) as db:
            rows = db.runs()
        assert [r.cache_hit for r in rows] == [False, False, True, True]
        # Replayed rows carry the same deterministic outputs.
        assert rows[0].output_digest == rows[2].output_digest
        assert rows[0].cycles == rows[2].cycles


class TestReportDeterminism:
    def test_render_twice_is_byte_identical(self, campaign_yaml, tmp_path):
        camp = load_campaign(campaign_yaml)
        db_path = tmp_path / "runs.db"
        run_campaign(camp, db_path=db_path, jobs=1, cache=False)
        assert _render(db_path) == _render(db_path)

    def test_jobs_level_does_not_change_report_bytes(self, campaign_yaml,
                                                     tmp_path):
        camp = load_campaign(campaign_yaml)
        db1 = tmp_path / "j1.db"
        db2 = tmp_path / "j2.db"
        run_campaign(camp, db_path=db1, jobs=1, cache=False)
        run_campaign(camp, db_path=db2, jobs=2, cache=False)
        assert _render(db1) == _render(db2)

    def test_cli_report_twice_identical_files(self, campaign_yaml,
                                              tmp_path, capsys):
        db_path = tmp_path / "runs.db"
        assert main(["campaign", "run", str(campaign_yaml),
                     "--db", str(db_path), "--no-cache"]) == 0
        out1 = tmp_path / "a.html"
        out2 = tmp_path / "b.html"
        assert main(["report", str(db_path), "--out", str(out1),
                     "--no-ingest"]) == 0
        assert main(["report", str(db_path), "--out", str(out2),
                     "--no-ingest"]) == 0
        capsys.readouterr()
        a, b = out1.read_bytes(), out2.read_bytes()
        assert a == b
        html = a.decode("utf-8")
        assert "<svg" in html and "Integration smoke" in html
        assert "bitwise stable" not in html  # single run: no false claim
        assert "atomic_sum_48" in html

    def test_wall_clock_never_rendered(self, campaign_yaml, tmp_path):
        camp = load_campaign(campaign_yaml)
        db_path = tmp_path / "runs.db"
        run_campaign(camp, db_path=db_path, jobs=1, cache=False)
        with RunDB(db_path) as db:
            rows = db.runs()
            html = render_report(db, fingerprint=FP)
        for row in rows:
            assert row.wall_s > 0.0            # recorded in the db...
            assert f"{row.wall_s:.3f}" not in html  # ...but never shown
            assert str(row.created_at) not in html

    def test_second_campaign_shows_deltas_and_badges(self, campaign_yaml,
                                                     tmp_path):
        camp = load_campaign(campaign_yaml)
        db_path = tmp_path / "runs.db"
        run_campaign(camp, db_path=db_path, jobs=1, cache=False)
        run_campaign(camp, db_path=db_path, jobs=1, cache=False)
        html = _render(db_path)
        # Identical spec + code: zero regression delta, stability badges.
        assert "bitwise stable across 2 runs" in html
        assert "first run" not in html  # every cell now has a previous

    def test_stale_rows_badged(self, campaign_yaml, tmp_path):
        camp = load_campaign(campaign_yaml)
        db_path = tmp_path / "runs.db"
        run_campaign(camp, db_path=db_path, jobs=1, cache=False)
        html = _render(db_path)  # FP differs from the real fingerprint
        assert "stale code" in html


class TestBenchInReport:
    def test_report_ingests_bench_dir(self, campaign_yaml, tmp_path,
                                      capsys):
        db_path = tmp_path / "runs.db"
        bench = tmp_path / "bench"
        bench.mkdir()
        (bench / "BENCH_hotloop.json").write_text(json.dumps({
            "schema": "repro.bench_hotloop/v1",
            "runs": [{"geomean": {"baseline": 1.8, "DAB": 2.0,
                                  "GPUDet": 1.9},
                      "headline_dab_geomean": 2.0},
                     {"geomean": {"baseline": 1.9, "DAB": 2.2,
                                  "GPUDet": 2.0},
                      "headline_dab_geomean": 2.2}],
        }))
        assert main(["campaign", "run", str(campaign_yaml),
                     "--db", str(db_path), "--no-cache"]) == 0
        out = tmp_path / "r.html"
        assert main(["report", str(db_path), "--out", str(out),
                     "--bench-dir", str(bench)]) == 0
        capsys.readouterr()
        html = out.read_text()
        assert "Benchmark trajectories" in html
        assert "hotloop (2 run(s))" in html
        # Idempotent: a second report ingests nothing new and renders
        # the same bytes.
        out2 = tmp_path / "r2.html"
        assert main(["report", str(db_path), "--out", str(out2),
                     "--bench-dir", str(bench)]) == 0
        capsys.readouterr()
        assert out.read_bytes() == out2.read_bytes()
        with RunDB(db_path) as db:
            assert db.counts()["bench"] == 2
