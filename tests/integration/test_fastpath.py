"""Event-driven issue engine vs per-cycle polling reference.

The fastpath (default) and the polling loop (``REPRO_NO_FASTPATH=1``)
must be observationally indistinguishable: identical memory digests,
cycle counts, metrics (including the Fig 15 stall breakdown and the
trace digest), no matter the architecture, workload, or fault plan.
"""

import os

import pytest

from repro.config import GPUConfig
from repro.core.dab import DABConfig
from repro.faults import FaultConfig, FaultPlan
from repro.gpudet.gpudet import GPUDetConfig
from repro.harness.runner import ArchSpec, run_workload
from repro.obs import ObsConfig
from repro.workloads.bc import build_bc
from repro.workloads.convolution import build_conv
from repro.workloads.microbench import build_atomic_sum, build_histogram


def _run(factory, arch, fastpath, **kw):
    """One run under an explicit engine; restores the env afterwards."""
    prev = os.environ.get("REPRO_NO_FASTPATH")
    if fastpath:
        os.environ.pop("REPRO_NO_FASTPATH", None)
    else:
        os.environ["REPRO_NO_FASTPATH"] = "1"
    try:
        return run_workload(factory, arch,
                            gpu_config=GPUConfig.small(), seed=1, **kw)
    finally:
        if prev is None:
            os.environ.pop("REPRO_NO_FASTPATH", None)
        else:
            os.environ["REPRO_NO_FASTPATH"] = prev


def _comparable(res):
    md = res.metrics_dict()
    md.pop("host_profile", None)
    return {
        "metrics": md,
        "mem_digest": res.mem_digest,
        "cycles": res.cycles,
        "stalls": res.stalls.as_dict(),
        "output_digest": res.extra["output_digest"],
    }


def _assert_engines_agree(factory, arch, **kw):
    fast = _comparable(_run(factory, arch, fastpath=True, **kw))
    poll = _comparable(_run(factory, arch, fastpath=False, **kw))
    assert fast == poll
    return fast


ARCHES = [
    pytest.param(ArchSpec.baseline(), id="baseline"),
    pytest.param(ArchSpec.make_dab(
        DABConfig(buffer_entries=64, scheduler="gwat", fusion=True,
                  coalescing=True), "dab"), id="dab"),
    pytest.param(ArchSpec.make_gpudet(), id="gpudet"),
]


@pytest.mark.parametrize("arch", ARCHES)
def test_engines_identical_with_observability(arch):
    # Full observability: the comparison covers the trace digest and
    # every registered metric, including gpu.run.epochs.
    out = _assert_engines_agree(
        lambda: build_histogram(4096, bins=32), arch,
        obs=ObsConfig(metrics=True, trace=True),
    )
    assert "trace" in out["metrics"]


@pytest.mark.parametrize("arch", ARCHES)
def test_engines_identical_under_faults(arch):
    plan = FaultPlan(11, FaultConfig(
        dram_burst_prob=0.2, dram_burst_len=6, dram_burst_extra=40,
        icnt_spike_prob=0.1, icnt_spike_max=20, reorder_prob=0.05,
        reorder_max_delay=12, stall_windows=2, stall_len=200,
    ))
    _assert_engines_agree(
        lambda: build_atomic_sum(2048), arch,
        faults=plan, invariants=True,
    )


def test_engines_identical_on_graph_workload():
    # Barriers + data-dependent control flow: exercises the barrier
    # release paths and their calendar touches.
    _assert_engines_agree(
        lambda: build_bc(graph="1k", scale=32),
        ArchSpec.make_dab(DABConfig(buffer_entries=64, scheduler="gwat",
                                    fusion=True, coalescing=True), "dab"),
        obs=ObsConfig(metrics=True, trace=True),
    )


def test_stall_windows_book_identically():
    # A small buffer forces buffer_full and flush stall windows on top
    # of the mem windows.  Each bucket the polling loop fills
    # cycle-by-cycle must come out identical from the bulk accounting.
    arch = ArchSpec.make_dab(DABConfig(buffer_entries=32, scheduler="gwat"),
                             "dab-tiny")
    out = _assert_engines_agree(lambda: build_bc(graph="1k", scale=32), arch)
    stalls = out["stalls"]
    assert stalls["mem"] > 0
    assert stalls["buffer_full"] > 0
    assert stalls["flush"] > 0
    assert stalls["issued"] > 0


def test_barrier_windows_book_identically():
    # Convolution hits whole-scheduler barrier waits on the baseline;
    # the fastpath books those windows with the "barrier" reason.
    out = _assert_engines_agree(lambda: build_conv("cnv2_1"),
                                ArchSpec.baseline())
    assert out["stalls"]["barrier"] > 0
    assert out["stalls"]["mem"] > 0


def test_gpudet_quantum_stalls_identical():
    out = _assert_engines_agree(
        lambda: build_atomic_sum(2048),
        ArchSpec.make_gpudet(GPUDetConfig(quantum_instrs=20)),
    )
    assert out["stalls"]["mem"] > 0


def test_epochs_gauge_matches_across_engines():
    # Both engines count one epoch per issue-phase execution; the gauge
    # is part of the metrics comparison above, but pin it explicitly.
    fast = _run(lambda: build_histogram(2048, bins=16), ArchSpec.baseline(),
                fastpath=True, obs=ObsConfig(metrics=True))
    poll = _run(lambda: build_histogram(2048, bins=16), ArchSpec.baseline(),
                fastpath=False, obs=ObsConfig(metrics=True))
    key = "gpu.run.epochs"
    f = fast.metrics_dict()["metrics"][key]
    p = poll.metrics_dict()["metrics"][key]
    assert f == p
    assert f["value"] > 0
