"""Exhaustive determinism sweep: every workload family x every
deterministic architecture variant must be bitwise stable across jitter
seeds.  This is the repository's strongest check of the paper's claim.
"""

import pytest

from repro.config import GPUConfig
from repro.core.dab import DABConfig
from repro.gpudet.gpudet import GPUDetConfig
from repro.sim.gpu import GPU
from repro.sim.nondet import JitterSource
from repro.workloads.bc import build_bc
from repro.workloads.convolution import build_conv
from repro.workloads.graphs import generate
from repro.workloads.microbench import build_order_sensitive
from repro.workloads.pagerank import build_pagerank

SEEDS = (1, 2, 3)

WORKLOADS = {
    "bc": lambda: build_bc(generate("FA", scale=64, seed=5)),
    "pagerank": lambda: build_pagerank(generate("coA", scale=4096, seed=5),
                                       iterations=2),
    "conv_1x1": lambda: build_conv("cnv2_1"),
    "conv_3x3": lambda: build_conv("cnv2_2"),
    "conv_gating": lambda: build_conv("cnv2_2g"),
    "microbench": lambda: build_order_sensitive(n=512),
}

DAB_VARIANTS = {
    "srr-64": DABConfig(buffer_entries=64, scheduler="srr"),
    "gtrr-64": DABConfig(buffer_entries=64, scheduler="gtrr"),
    "gtar-64": DABConfig(buffer_entries=64, scheduler="gtar"),
    "gwat-64": DABConfig(buffer_entries=64, scheduler="gwat"),
    "gwat-32-AF": DABConfig(buffer_entries=32, scheduler="gwat", fusion=True),
    "paper": DABConfig.paper_default(),
    "warp-gto": DABConfig.warp_level(),
    "offset": DABConfig(buffer_entries=64, scheduler="gwat", fusion=True,
                        offset_flush=True),
}


def digests_across_seeds(factory, dab=None, gpudet=None, config=None):
    digests = set()
    for seed in SEEDS:
        wl = factory()
        gpu = GPU(config or GPUConfig.small(), wl.mem, dab=dab, gpudet=gpudet,
                  jitter=JitterSource(seed, dram_max=48, icnt_max=24))
        wl.drive(gpu)
        digests.add(wl.output_digest())
    return digests


@pytest.mark.parametrize("wname", sorted(WORKLOADS))
@pytest.mark.parametrize("vname", sorted(DAB_VARIANTS))
def test_dab_variant_bitwise_stable(wname, vname):
    digests = digests_across_seeds(WORKLOADS[wname], dab=DAB_VARIANTS[vname])
    assert len(digests) == 1, f"{wname} under {vname} varied across seeds"


@pytest.mark.parametrize("wname", sorted(WORKLOADS))
def test_gpudet_bitwise_stable(wname):
    digests = digests_across_seeds(WORKLOADS[wname], gpudet=GPUDetConfig())
    assert len(digests) == 1


def test_gating_machine_deterministic():
    gated = GPUConfig.small().replace(num_clusters=3)
    digests = digests_across_seeds(
        WORKLOADS["conv_gating"], dab=DAB_VARIANTS["gwat-32-AF"], config=gated
    )
    assert len(digests) == 1


def test_narrow_machine_deterministic():
    digests = digests_across_seeds(
        WORKLOADS["bc"], dab=DAB_VARIANTS["paper"], config=GPUConfig.narrow()
    )
    assert len(digests) == 1
