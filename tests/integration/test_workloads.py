"""Integration tests: the paper's workloads compute correct results on
every architecture and stay deterministic under DAB/GPUDet."""

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.core.dab import DABConfig
from repro.gpudet.gpudet import GPUDetConfig
from repro.sim.gpu import GPU
from repro.sim.nondet import JitterSource
from repro.workloads.bc import bc_reference, build_bc
from repro.workloads.convolution import (
    CONV_LAYER_NAMES,
    GATING_LAYERS,
    RESNET_LAYERS,
    build_conv,
    conv_reference,
)
from repro.workloads.graphs import generate
from repro.workloads.locks import LOCK_ALGORITHMS, build_lock_sum
from repro.workloads.microbench import (
    build_atomic_sum,
    build_multi_target,
    build_order_sensitive,
)
from repro.workloads.pagerank import build_pagerank, pagerank_reference


def run(workload, config=None, dab=None, gpudet=None, seed=1):
    gpu = GPU(config or GPUConfig.small(), workload.mem, dab=dab,
              gpudet=gpudet, jitter=JitterSource(seed))
    return workload.drive(gpu)


class TestMicrobench:
    def test_atomic_sum_reference(self):
        wl = build_atomic_sum(n=512)
        run(wl)
        ref = wl.info["reference_f64"]
        assert float(wl.mem.buffer("out")[0]) == pytest.approx(ref, rel=1e-3)

    def test_multi_target_scatter(self):
        wl = build_multi_target(n=1024, targets=32)
        run(wl)
        got = wl.mem.buffer("out").astype(np.float64)
        assert np.allclose(got, wl.info["reference_f64"], rtol=1e-3)

    def test_order_sensitive_is_sensitive(self):
        from repro.fp.float32 import orderings_differ

        wl = build_order_sensitive(n=256)
        assert orderings_differ(list(wl.mem.buffer("in")), trials=64)

    def test_output_digest_tracks_outputs_only(self):
        wl = build_atomic_sum(n=64)
        d0 = wl.output_digest()
        wl.mem.buffer("in")[0] = 999.0  # inputs are not part of outputs
        assert wl.output_digest() == d0
        wl.mem.buffer("out")[0] = 1.0
        assert wl.output_digest() != d0

    def test_targets_validation(self):
        with pytest.raises(ValueError):
            build_multi_target(targets=0)


class TestBC:
    @pytest.fixture(scope="class")
    def graph(self):
        return generate("FA", scale=64, seed=5)

    def test_bfs_depths_match_reference(self, graph):
        wl = build_bc(graph)
        run(wl)
        d_ref, sigma_ref, delta_ref = bc_reference(graph)
        assert np.array_equal(wl.mem.buffer("d"), d_ref)

    def test_sigma_and_delta_match_reference(self, graph):
        wl = build_bc(graph)
        run(wl)
        d_ref, sigma_ref, delta_ref = bc_reference(graph)
        assert np.allclose(wl.mem.buffer("sigma"), sigma_ref, rtol=1e-3)
        assert np.allclose(wl.mem.buffer("delta"), delta_ref,
                           rtol=1e-2, atol=1e-4)

    def test_bc_correct_under_dab(self, graph):
        wl = build_bc(graph)
        run(wl, dab=DABConfig.paper_default())
        d_ref, sigma_ref, _ = bc_reference(graph)
        assert np.array_equal(wl.mem.buffer("d"), d_ref)
        assert np.allclose(wl.mem.buffer("sigma"), sigma_ref, rtol=1e-3)

    def test_bc_correct_under_gpudet(self, graph):
        wl = build_bc(graph)
        run(wl, gpudet=GPUDetConfig())
        d_ref, sigma_ref, _ = bc_reference(graph)
        assert np.array_equal(wl.mem.buffer("d"), d_ref)
        assert np.allclose(wl.mem.buffer("sigma"), sigma_ref, rtol=1e-3)

    def test_bc_deterministic_across_seeds(self, graph):
        digests = set()
        for seed in (1, 2, 3):
            wl = build_bc(graph)
            run(wl, dab=DABConfig.paper_default(), seed=seed)
            digests.add(wl.output_digest())
        assert len(digests) == 1

    def test_bc_runs_many_kernels(self, graph):
        wl = build_bc(graph)
        res = run(wl)
        assert res.kernels > 2  # one forward kernel per BFS level + backward

    def test_atomics_pki_positive(self, graph):
        wl = build_bc(graph)
        res = run(wl)
        assert res.atomics_per_kilo_instr > 1


class TestPageRank:
    def test_matches_reference(self):
        g = generate("coA", scale=2048, seed=5)
        wl = build_pagerank(g, iterations=2)
        run(wl)
        ref = pagerank_reference(g, 2)
        got = wl.mem.buffer(wl.info["final_buffer"]).astype(np.float64)
        assert np.allclose(got, ref, rtol=1e-3)

    def test_rank_is_probabilityish(self):
        g = generate("coA", scale=2048, seed=5)
        wl = build_pagerank(g, iterations=3)
        run(wl)
        got = wl.mem.buffer(wl.info["final_buffer"]).astype(np.float64)
        # mass is conserved up to sink leakage
        assert 0.2 < got.sum() <= 1.01

    def test_deterministic_under_dab(self):
        g = generate("coA", scale=2048, seed=5)
        digests = set()
        for seed in (1, 2, 3):
            wl = build_pagerank(g, iterations=2)
            run(wl, dab=DABConfig.paper_default(), seed=seed)
            digests.add(wl.output_digest())
        assert len(digests) == 1

    def test_has_highest_atomics_pki(self):
        # Table II: PageRank has by far the highest atomics PKI.
        g = generate("coA", scale=2048, seed=5)
        prk = run(build_pagerank(g, iterations=2))
        bcg = generate("FA", scale=64, seed=5)
        bc = run(build_bc(bcg))
        assert prk.atomics_per_kilo_instr > bc.atomics_per_kilo_instr


class TestConvolution:
    @pytest.mark.parametrize("layer", ["cnv2_1", "cnv2_2", "cnv3_3"])
    def test_matches_reference(self, layer):
        wl = build_conv(layer)
        run(wl)
        got = wl.mem.buffer("dw").astype(np.float64)
        assert np.allclose(got, wl.info["reference_f64"], rtol=1e-3, atol=1e-4)

    @pytest.mark.parametrize("layer", ["cnv2_1", "cnv2_2"])
    def test_matches_reference_under_dab(self, layer):
        wl = build_conv(layer)
        run(wl, dab=DABConfig.paper_default())
        got = wl.mem.buffer("dw").astype(np.float64)
        assert np.allclose(got, wl.info["reference_f64"], rtol=1e-3, atol=1e-4)

    def test_all_layers_build(self):
        for name in CONV_LAYER_NAMES:
            wl = build_conv(name)
            assert wl.kernels[0].grid_dim == RESNET_LAYERS[name].grid_dim

    def test_gating_layers_have_four_warps_per_cta(self):
        for name, cfg in GATING_LAYERS.items():
            assert cfg.cta_dim == 128
            assert cfg.felems_per_region == 128

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError):
            build_conv("cnv9_9")

    def test_region_alignment_invariant(self):
        for cfg in RESNET_LAYERS.values():
            assert cfg.filter_elems % cfg.regions == 0

    def test_deterministic_under_dab(self):
        digests = set()
        for seed in (1, 2, 3):
            wl = build_conv("cnv2_2")
            run(wl, dab=DABConfig.paper_default(), seed=seed)
            digests.add(wl.output_digest())
        assert len(digests) == 1


class TestLocks:
    @pytest.mark.parametrize("alg", LOCK_ALGORITHMS)
    def test_lock_sum_exact_ticket_order(self, alg):
        wl = build_lock_sum(alg, n=64)
        run(wl, config=GPUConfig.tiny())
        assert float(wl.mem.buffer("out")[0]) == wl.info["reference_f32"]

    @pytest.mark.parametrize("alg", LOCK_ALGORITHMS)
    def test_lock_sum_deterministic_on_baseline(self, alg):
        vals = set()
        for seed in (1, 2):
            wl = build_lock_sum(alg, n=64)
            run(wl, config=GPUConfig.tiny(), seed=seed)
            vals.add(float(wl.mem.buffer("out")[0]))
        assert len(vals) == 1

    def test_locks_far_slower_than_atomic_add(self):
        base = build_atomic_sum(n=64)
        base_res = run(base, config=GPUConfig.tiny())
        lock = build_lock_sum("tts", n=64)
        lock_res = run(lock, config=GPUConfig.tiny())
        assert lock_res.cycles > 5 * base_res.cycles

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            build_lock_sum("mutex")
