"""Tests for extension features: histogram workload, checkpointing."""

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.core.dab import DABConfig
from repro.gpudet.gpudet import GPUDetConfig
from repro.sim.gpu import GPU, SimulationError
from repro.sim.nondet import JitterSource
from repro.workloads.microbench import build_atomic_sum, build_histogram


def run(wl, dab=None, gpudet=None, seed=1, config=None):
    gpu = GPU(config or GPUConfig.tiny(), wl.mem, dab=dab, gpudet=gpudet,
              jitter=JitterSource(seed, dram_max=48, icnt_max=24))
    wl.drive(gpu)
    return gpu


class TestHistogram:
    def test_counts_match_reference(self):
        wl = build_histogram(n=2048, bins=32)
        run(wl)
        assert (wl.mem.buffer("hist") == wl.info["reference"]).all()

    def test_integer_reduction_deterministic_even_on_baseline(self):
        # Associative integer adds: the baseline is *value*-deterministic
        # even though its atomic order varies — the paper's point that
        # non-determinism comes from non-associative f32 specifically.
        digests = set()
        for seed in (1, 2, 3):
            wl = build_histogram(n=2048, bins=32)
            run(wl, seed=seed)
            digests.add(wl.output_digest())
        assert len(digests) == 1

    def test_histogram_under_dab_and_gpudet(self):
        for kw in ({"dab": DABConfig.paper_default()},
                   {"gpudet": GPUDetConfig()}):
            wl = build_histogram(n=1024, bins=16)
            run(wl, **kw)
            assert (wl.mem.buffer("hist") == wl.info["reference"]).all()

    def test_bins_validated(self):
        with pytest.raises(ValueError):
            build_histogram(bins=0)

    def test_total_count_conserved(self):
        wl = build_histogram(n=1024, bins=7)
        run(wl)
        assert wl.mem.buffer("hist").sum() == 1024


class TestCheckpoint:
    def test_checkpoint_between_kernels(self):
        wl = build_atomic_sum(n=256)
        gpu = run(wl, dab=DABConfig.paper_default())
        digest = gpu.checkpoint()
        assert digest == wl.mem.snapshot_digest()

    def test_checkpoint_digest_deterministic_across_seeds(self):
        digests = set()
        for seed in (1, 2, 3):
            wl = build_atomic_sum(n=256)
            gpu = run(wl, dab=DABConfig.paper_default(), seed=seed)
            digests.add(gpu.checkpoint())
        assert len(digests) == 1

    def test_checkpoint_requires_idle(self):
        wl = build_atomic_sum(n=64)
        gpu = GPU(GPUConfig.tiny(), wl.mem, jitter=JitterSource(1))
        for k in wl.kernels:
            gpu.launch(k)
        with pytest.raises(SimulationError):
            gpu.checkpoint()  # queued work pending

    def test_resume_after_checkpoint_stays_deterministic(self):
        # Preempt between two kernel launches; the combined result must
        # still be seed-invariant under DAB.
        from repro.arch.isa import assemble
        from repro.arch.kernel import Kernel
        from repro.memory.globalmem import GlobalMemory

        prog = assemble("""
            mov.s32 r_i, %gtid
            shl.s32 r_off, r_i, 2
            add.s32 r_addr, c_in, r_off
            ld.global.f32 r_v, [r_addr]
            red.global.add.f32 [c_out], r_v
            exit
        """)
        digests = set()
        for seed in (1, 2, 3):
            rng = np.random.default_rng(0)
            data = (rng.standard_normal(128) * 2.0 **
                    rng.integers(-6, 7, 128)).astype(np.float32)
            mem = GlobalMemory()
            b_in = mem.alloc("in", 128, "f32", init=data)
            b_out = mem.alloc("out", 1, "f32")
            gpu = GPU(GPUConfig.tiny(), mem, dab=DABConfig.paper_default(),
                      jitter=JitterSource(seed, dram_max=48, icnt_max=24))
            params = {"c_in": b_in, "c_out": b_out}
            gpu.launch(Kernel("k1", prog, 2, 64, params))
            gpu.run()
            mid = gpu.checkpoint()
            gpu.launch(Kernel("k2", prog, 2, 64, params))
            gpu.run()
            digests.add((mid, gpu.checkpoint()))
        assert len(digests) == 1
