"""End-to-end tests for the conformance subsystem (repro.check).

Covers the three tentpole layers working together: the reference
oracle's golden semantics, the differential harness over a real
workload × architecture sub-matrix (through the sweep engine, with
worker processes), fault-injection detectability, and the vector-clock
race certifier on both clean and seeded-racy programs.
"""

import json

import numpy as np
import pytest

from repro.check.differential import (
    Mismatch,
    diff_one,
    parse_final_mem,
    parse_red_commits,
    run_differential,
)
from repro.check.oracle import OracleError, run_oracle, summarize_reds
from repro.check.presets import CERT_WORKLOADS, DIFF_WORKLOADS, diff_archs
from repro.check.racecert import analyze_trace, certify_drf
from repro.faults import FaultConfig, FaultPlan
from repro.harness.runner import ArchSpec
from repro.harness.sweep import WorkloadRef
from repro.memory.globalmem import AtomicOp


class TestOracle:
    def test_atomic_sum_matches_exact_f64_reference(self):
        res = run_oracle(DIFF_WORKLOADS["atomic_sum"].ref)
        out = res.memory["out"]
        ops = [op for op in res.red_ops if op.opcode == "add.f32"]
        assert len(ops) == 512
        # The oracle's own result must be inside the fp bound of the
        # exact f64 sum — a smoke check that it actually summed.
        vals = np.float64([op.operands[0] for op in ops])
        exact = float(np.sum(vals))
        bound = len(ops) * 2.0 ** -24 * float(np.sum(np.abs(vals)))
        assert abs(float(out[0]) - exact) <= bound
        assert res.kernels == 1 and res.atom_count == 0

    def test_histogram_is_exact_integers(self):
        res = run_oracle(DIFF_WORKLOADS["histogram"].ref)
        hist = res.memory["hist"]
        assert int(hist.sum()) == 512  # one increment per element
        summary = res.red_summary()
        assert all(op == "add.s32" for (_a, op) in summary)

    def test_locate_names_buffers(self):
        res = run_oracle(DIFF_WORKLOADS["atomic_sum"].ref)
        (addr, _op), _stat = next(iter(res.red_summary().items()))
        name, idx = res.locate(addr)
        assert name == "out" and idx == 0

    def test_step_budget_enforced(self):
        with pytest.raises(OracleError, match="step budget"):
            run_oracle(DIFF_WORKLOADS["lock_ts"].ref, step_budget=100)

    def test_memory_digest_is_stable(self):
        a = run_oracle(DIFF_WORKLOADS["order_sensitive"].ref)
        b = run_oracle(DIFF_WORKLOADS["order_sensitive"].ref)
        assert a.memory_digest() == b.memory_digest()


class TestDifferentialMatrix:
    def test_microbench_matrix_with_workers(self):
        report = run_differential(
            workloads=["atomic_sum", "order_sensitive", "histogram"],
            jobs=2)
        assert report.ok, report.render()
        # 3 workloads × (baseline + 4 DAB + GPUDet).
        assert report.cells == 18
        doc = report.to_doc()
        assert doc["schema"] == "repro.check-diff/v1"
        assert doc["ok"] is True and not doc["mismatches"]
        assert "differential" in report.render()

    def test_lock_workloads_skip_dab_columns(self):
        report = run_differential(workloads=["lock_ts"], jobs=1)
        assert report.ok, report.render()
        archs = {row["arch"] for row in report.rows}
        assert archs == {"baseline", "GPUDet"}

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown conformance workload"):
            run_differential(workloads=["nope"])

    def test_wire_format_round_trip(self):
        ops = [AtomicOp(4096, "add.f32", (1.5,)),
               AtomicOp(4100, "max.s32", (7,))]
        payload = json.dumps(
            [[op.addr, op.opcode, [float(v) for v in op.operands]]
             for op in ops])
        back = parse_red_commits(payload)
        assert back == ops
        assert isinstance(back[1].operands[0], int)  # dtype-faithful

    def test_mismatch_render_names_address(self):
        m = Mismatch(workload="w", arch="a", kind="memory", buffer="out",
                     index=3, addr=0x1400, expected=1.0, got=2.0,
                     detail="boom")
        text = m.render()
        assert "out[3]" in text and "0x1400" in text and "boom" in text


class TestFaultDetection:
    """Acceptance: an injected drop-fault must yield a structured
    mismatch naming the corrupted address."""

    def test_drop_fault_produces_named_mismatch(self):
        mismatches, status = diff_one(
            "multi_target", ArchSpec.make_dab(), seed=1,
            faults=FaultPlan(1, FaultConfig(drop_prob=0.3)))
        assert mismatches
        named = [m for m in mismatches if m.buffer == "out" and m.addr >= 0]
        assert named, [m.render() for m in mismatches]
        # The run deadlocks under the strict protocol; the harness must
        # still diff the partial state rather than giving up.
        assert any(m.kind == "run-error" for m in mismatches) or status == "ok"

    def test_clean_run_has_no_mismatches(self):
        mismatches, status = diff_one("multi_target", ArchSpec.make_dab())
        assert status == "ok" and not mismatches


class TestRaceCertifier:
    def test_all_presets_certify_drf(self):
        # The full-preset sweep runs in CI (`repro check drf`); here the
        # cheap representative subset keeps tier-1 fast.
        for name in ("atomic_sum", "histogram", "multi_target", "conv"):
            report = certify_drf(name)
            assert report.ok, report.render()
            assert report.accesses > 0

    def test_lock_chain_carries_happens_before(self):
        report = certify_drf("lock_ts_backoff")
        assert report.ok, report.render()
        assert report.sync_addrs >= 2  # lock + serving

    def test_bc_races_are_waived_not_fatal(self):
        report = certify_drf("bc")
        assert report.ok, report.render()
        assert report.total_waived > 0
        assert all(r.buffer == "d" for r in report.waived)
        assert "waived" in report.verdict()

    def test_racy_variant_is_flagged(self):
        report = certify_drf(WorkloadRef(
            "lock_sum_racy", kwargs={"n": 128, "cta_dim": 64}))
        assert not report.ok
        assert report.total_races > 0
        racy = report.races[0]
        assert racy.buffer == "out"
        assert 0 in (racy.gtid_a, racy.gtid_b)  # the rogue thread
        doc = report.to_doc()
        assert doc["ok"] is False and doc["races"] == report.total_races

    def test_every_cert_preset_is_buildable(self):
        for name, ref in CERT_WORKLOADS.items():
            assert callable(ref), name


class TestAnalyzeTraceUnit:
    """The happens-before core on hand-built traces."""

    @staticmethod
    def locate(addr):
        return "buf", (addr - 4096) // 4

    def ev(self, name, warp, addrs, gtids=None, cta=0, cycle=0):
        if name == "bar":
            return (cycle, "access", "bar", {"warp": warp, "cta": cta})
        return (cycle, "access", name,
                {"warp": warp, "cta": cta, "addrs": addrs,
                 "gtids": gtids or [warp * 32] * len(addrs)})

    def analyze(self, events, info=None):
        return analyze_trace(events, self.locate, info or {})

    def test_unordered_cross_warp_write_write_races(self):
        races, _w, kernels, accesses, _s = self.analyze([
            self.ev("store", 0, [4096]),
            self.ev("store", 1, [4096]),
        ])
        assert kernels == 1 and accesses == 2
        assert len(races) == 1
        assert {races[0].warp_a, races[0].warp_b} == {0, 1}

    def test_reads_never_race_with_reads(self):
        races, *_ = self.analyze([
            self.ev("load", 0, [4096]),
            self.ev("load", 1, [4096]),
        ])
        assert not races

    def test_atomic_location_is_exempt_and_orders(self):
        # Both warps touch addr 4096 atomically, then plain-access 4100:
        # the sync location carries acquire/release, so no race.
        races, *_ = self.analyze([
            self.ev("store", 0, [4100]),
            self.ev("red", 0, [4096]),
            self.ev("red", 1, [4096]),
            self.ev("load", 1, [4100]),
        ])
        assert not races

    def test_barrier_joins_cta_clocks(self):
        races, *_ = self.analyze([
            self.ev("store", 0, [4100]),
            self.ev("bar", 0, []),
            self.ev("bar", 1, []),
            self.ev("load", 1, [4100]),
        ])
        assert not races

    def test_without_barrier_same_pattern_races(self):
        races, *_ = self.analyze([
            self.ev("store", 0, [4100]),
            self.ev("load", 1, [4100]),
        ])
        assert len(races) == 1
        assert races[0].kind_a == "store" and races[0].kind_b == "load"

    def test_kernel_boundary_is_a_global_join(self):
        races, _w, kernels, *_ = self.analyze([
            (0, "kernel", "begin", {"kernel": "k1"}),
            self.ev("store", 0, [4100]),
            (1, "kernel", "begin", {"kernel": "k2"}),
            self.ev("load", 1, [4100]),
        ])
        assert kernels == 2 and not races

    def test_intra_instruction_duplicate_store_lanes_race(self):
        races, *_ = self.analyze([
            self.ev("store", 0, [4100, 4100], gtids=[3, 9]),
        ])
        assert len(races) == 1
        assert races[0].warp_a == races[0].warp_b == 0
        assert {races[0].gtid_a, races[0].gtid_b} == {3, 9}

    def test_declared_sync_buffer_ranges_are_exempt(self):
        info = {"_sync_ranges": ((4100, 4104),)}
        races, _w, _k, _a, sync_addrs = self.analyze([
            self.ev("store", 0, [4100]),
            self.ev("load", 1, [4100]),
        ], info)
        assert not races and sync_addrs == 1

    def test_waived_buffers_reported_separately(self):
        info = {"race_exempt_buffers": ("buf",)}
        races, waived, *_ = self.analyze([
            self.ev("store", 0, [4100]),
            self.ev("store", 1, [4100]),
        ], info)
        assert not races and len(waived) == 1 and waived[0].waived
