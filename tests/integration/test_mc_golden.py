"""Golden-snapshot regression tests for ``repro.mc/v1`` certificates.

Each ``tests/golden/*.mc.json`` pins one model-checked preset's full
certificate: exploration counts (DPOR pruning quality), terminal
digests (the proven DAB image and the baseline's divergence set), and
the replay-verified witness traces.  Any change to the executor, the
conflict relation, or the DPOR backtracking shows up as a named drift
— count by count, digest by digest — instead of a silent change in
what "exhaustively certified" means.  ``lock_sum_racy`` pins the
negative control: the certificate that *proves divergence* must stay a
divergence proof.

Intentional changes are re-pinned with::

    python -m pytest tests/integration/test_mc_golden.py --update-golden
"""

import json
import pathlib

import pytest

from repro.check.mc import certify_mc

GOLDEN_DIR = pathlib.Path(__file__).parents[1] / "golden"

#: Presets pinned by snapshot; mc_sum2 also pins the brute cross-check.
PINNED = {
    "mc_sum2": {"brute": True},
    "mc_hist2": {"brute": False},
    "lock_sum_racy": {"brute": False},
}


def drift_diff(golden: dict, current: dict, prefix="") -> str:
    lines = []
    for key in sorted(set(golden) | set(current)):
        old, new = golden.get(key, "<absent>"), current.get(key, "<absent>")
        if old == new:
            continue
        if isinstance(old, dict) and isinstance(new, dict):
            lines.append(drift_diff(old, new, prefix=f"{prefix}{key}."))
        else:
            lines.append(f"  {prefix}{key}: {old!r} -> {new!r}")
    return "\n".join(line for line in lines if line)


@pytest.mark.parametrize("name", sorted(PINNED))
def test_mc_certificate_golden(name, request):
    path = GOLDEN_DIR / f"{name}.mc.json"
    current = certify_mc(name, brute=PINNED[name]["brute"]).to_doc()
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"no golden certificate for {name!r}; create it with "
        f"`python -m pytest {__file__} --update-golden`"
    )
    golden = json.loads(path.read_text())
    assert golden == current, (
        f"mc certificate for {name!r} drifted from {path}:\n"
        + drift_diff(golden, current)
        + "\n(if intentional, re-pin with --update-golden)"
    )
