"""End-to-end tests for the stateless model checker (repro.check.mc):
full certification of every preset, the racy negative control, brute
cross-checking, budget/cap refusals, certificates, and the
``repro check mc`` CLI surface (exit codes and diagnostics)."""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.check.mc import (
    MCError,
    certify_many,
    certify_mc,
    explore,
    write_certificates,
)
from repro.check.presets import MC_WORKLOADS
from repro.harness.sweep import WorkloadRef

REPO = pathlib.Path(__file__).parents[2]


def run_cli(*argv, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, timeout=timeout, env=env,
        cwd=str(REPO),
    )


class TestCertification:
    def test_all_default_presets_certify(self):
        reports = certify_many()
        names = [r.preset for r in reports]
        assert names == [n for n, p in MC_WORKLOADS.items() if not p.racy]
        for r in reports:
            assert r.ok, r.render()
            assert r.dab.deterministic
            assert r.dab.interleavings >= 3
            # The one proven DAB image is the oracle's, bit for bit.
            assert set(r.dab.mem_digests) == {r.oracle_mem_digest}
            assert set(r.dab.multiset_digests) == {r.oracle_multiset_digest}
            if r.baseline_diverges_expected:
                assert len(r.baseline.mem_digests) > 1
                assert r.witnesses["baseline"].verified
            else:
                assert len(r.baseline.mem_digests) == 1
                assert "baseline" not in r.witnesses

    def test_exhaustive_proof_covers_at_least_three_kernels(self):
        proven = [r for r in certify_many() if r.ok]
        assert len(proven) >= 3

    def test_racy_negative_control(self):
        r = certify_mc("lock_sum_racy")
        assert not r.ok
        assert r.as_expected
        assert "NONDETERMINISTIC as expected" in r.verdict()
        for model in ("dab", "baseline"):
            assert len(getattr(r, model).mem_digests) > 1
            assert r.witnesses[model].verified
        # But the *issued* multiset is schedule-dependent only through
        # operands: the racy load/store kernel issues no reductions.
        assert r.dab.red_commits == 0

    def test_brute_force_cross_check(self):
        r = certify_mc("mc_sum2", brute=True)
        assert r.ok, r.render()
        for model in ("dab", "baseline"):
            pruned = getattr(r, model)
            full = r.brute[model]
            assert set(pruned.mem_digests) == set(full.mem_digests)
            assert pruned.interleavings <= full.interleavings
        # DPOR must actually prune something on a 2-warp sum.
        assert r.dab.interleavings < r.brute["dab"].interleavings

    def test_unknown_preset_rejected_with_vocabulary(self):
        with pytest.raises(ValueError, match="mc_sum2"):
            certify_mc("never_heard_of_it")
        with pytest.raises(ValueError, match="lock_sum_racy"):
            certify_many(["mc_sum2", "nope"])

    def test_interleaving_budget_is_a_hard_refusal(self):
        with pytest.raises(MCError, match="no partial certification"):
            explore(MC_WORKLOADS["mc_sum3"].ref, "dab", dpor=False,
                    max_interleavings=5)

    def test_warp_cap_is_a_hard_refusal(self):
        big = WorkloadRef("order_sensitive",
                          kwargs={"n": 512, "cta_dim": 32})
        with pytest.raises(MCError, match="warps"):
            explore(big, "dab")

    def test_certificates_written_with_schema(self, tmp_path):
        reports = certify_many(["mc_sum2", "lock_sum_racy"])
        paths = write_certificates(reports, tmp_path)
        assert [os.path.basename(p) for p in paths] == [
            "mc_sum2.mc.json", "lock_sum_racy.mc.json"]
        for path, report in zip(paths, reports):
            doc = json.loads(pathlib.Path(path).read_text())
            assert doc["schema"] == "repro.mc/v1"
            assert doc["preset"] == report.preset
            assert doc["ok"] == report.ok
            assert doc["as_expected"] is True
            assert doc["models"]["dab"]["interleavings"] > 0
            assert doc["oracle"]["mem_digest"]
        racy_doc = json.loads(pathlib.Path(paths[1]).read_text())
        assert racy_doc["ok"] is False
        for model in ("dab", "baseline"):
            w = racy_doc["witnesses"][model]
            assert w["verified"] is True
            assert w["digest_a"] != w["digest_b"]
            assert w["trace_a"] != w["trace_b"]


class TestExpectationMismatches:
    """A certificate whose verdict contradicts its preset's expectation
    must come back BROKEN with named problems — the checker checks
    itself, not just the architecture."""

    def test_diverging_kernel_declared_associative(self, monkeypatch):
        monkeypatch.setitem(
            MC_WORKLOADS, "_mc_wrong_assoc",
            type(MC_WORKLOADS["mc_sum2"])(
                MC_WORKLOADS["mc_sum2"].ref, baseline_diverges=False))
        r = certify_mc("_mc_wrong_assoc")
        assert not r.as_expected and not r.ok
        assert any("associative" in p for p in r.problems)
        assert "BROKEN" in r.verdict()
        assert "PROBLEM" in r.render()

    def test_converging_kernel_declared_diverging(self, monkeypatch):
        monkeypatch.setitem(
            MC_WORKLOADS, "_mc_wrong_fp",
            type(MC_WORKLOADS["mc_hist2"])(MC_WORKLOADS["mc_hist2"].ref))
        r = certify_mc("_mc_wrong_fp")
        assert not r.as_expected
        assert any("failed to diverge" in p for p in r.problems)

    def test_racy_kernel_declared_clean(self, monkeypatch):
        monkeypatch.setitem(
            MC_WORKLOADS, "_mc_wrong_clean",
            type(MC_WORKLOADS["lock_sum_racy"])(
                MC_WORKLOADS["lock_sum_racy"].ref))
        r = certify_mc("_mc_wrong_clean")
        assert not r.as_expected
        assert any("schedule-dependent" in p for p in r.problems)
        # The divergence is still witnessed, even though unexpected.
        assert r.witnesses["dab"].verified


class TestCheckMcCLI:
    def test_clean_run_exits_zero(self, tmp_path):
        cert_dir = tmp_path / "certs"
        out_json = tmp_path / "mc.json"
        proc = run_cli("check", "mc", "--workloads", "mc_sum2,mc_hist2",
                       "--brute", "--cert-dir", str(cert_dir),
                       "--json", str(out_json))
        assert proc.returncode == 0, proc.stderr
        assert "model checking PASSED (exhaustive)" in proc.stdout
        assert "DETERMINISTIC" in proc.stdout
        assert "cross-check" in proc.stdout
        docs = json.loads(out_json.read_text())
        assert [d["preset"] for d in docs] == ["mc_sum2", "mc_hist2"]
        assert all(d["ok"] for d in docs)
        assert (cert_dir / "mc_sum2.mc.json").exists()
        assert (cert_dir / "mc_hist2.mc.json").exists()

    def test_racy_control_exits_one(self):
        proc = run_cli("check", "mc", "--workloads", "lock_sum_racy")
        assert proc.returncode == 1
        assert "NONDETERMINISTIC as expected" in proc.stdout
        assert "witness" in proc.stdout
        assert "as expected for racy controls" in proc.stdout

    def test_unknown_workload_diagnostic(self):
        proc = run_cli("check", "mc", "--workloads", "nope")
        assert proc.returncode != 0
        assert "check mc:" in proc.stderr
        # The diagnostic must teach the valid vocabulary.
        assert "mc_sum2" in proc.stderr and "lock_sum_racy" in proc.stderr

    def test_json_to_stdout(self):
        proc = run_cli("check", "mc", "--workloads", "mc_sum2",
                       "--json", "-")
        assert proc.returncode == 0, proc.stderr
        # The JSON array is printed between the per-preset renders and
        # the final verdict line.
        lines = proc.stdout.splitlines()
        start = lines.index("[")
        end = len(lines) - 1 - lines[::-1].index("]")
        docs = json.loads("\n".join(lines[start:end + 1]))
        assert docs[0]["schema"] == "repro.mc/v1"
