"""End-to-end observability: determinism of traces, metrics JSON, CLI."""

import json

import pytest

from repro.cli import main
from repro.config import GPUConfig
from repro.harness.runner import ArchSpec, run_workload
from repro.obs import ObsConfig
from repro.workloads.microbench import build_atomic_sum


def run_traced(seed=1, n=128, arch=None, obs=None):
    return run_workload(
        lambda: build_atomic_sum(n),
        arch or ArchSpec.make_dab(),
        gpu_config=GPUConfig.tiny(),
        seed=seed,
        obs=obs or ObsConfig.full(trace_capacity=0),
    )


class TestTraceDeterminism:
    def test_identical_runs_produce_identical_traces(self, tmp_path):
        a = run_traced()
        b = run_traced()
        assert a.obs.tracer.digest() == b.obs.tracer.digest()
        pa, pb = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        a.obs.tracer.write_jsonl(pa)
        b.obs.tracer.write_jsonl(pb)
        assert open(pa, "rb").read() == open(pb, "rb").read()

    def test_different_seed_changes_trace_not_output(self):
        a = run_traced(seed=1)
        b = run_traced(seed=2)
        # Timing varies with jitter, the committed result must not.
        assert a.extra["output_digest"] == b.extra["output_digest"]
        assert a.obs.tracer.digest() != b.obs.tracer.digest()

    def test_metrics_mirror_result_counters(self):
        r = run_traced()
        m = r.obs.metrics
        total_inserts = sum(row["inserts"] for row in r.buffer_stats)
        mirrored = sum(
            v["value"] for k, v in m.prefixed("sm.").items()
            if k.endswith(".atomics_buffered")
        )
        assert mirrored == total_inserts > 0

    def test_disabled_obs_attaches_nothing(self):
        r = run_workload(lambda: build_atomic_sum(64), ArchSpec.make_dab(),
                         gpu_config=GPUConfig.tiny())
        assert r.obs is None
        assert r.metrics_dict()["metrics"] == {}


class TestMetricsDict:
    REQUIRED = ("schema", "label", "workload", "cycles", "instructions",
                "ipc", "stalls", "caches", "flush", "icnt", "buffers",
                "partitions", "metrics", "trace", "host_profile")

    def test_schema_stable_keys(self):
        doc = run_traced().metrics_dict()
        for key in self.REQUIRED:
            assert key in doc, key
        assert doc["schema"] == "repro.metrics/v3"

    def test_required_content(self):
        doc = run_traced().metrics_dict()
        assert "buffer_full" in doc["stalls"] and "other" in doc["stalls"]
        assert doc["buffers"] and {"fused", "max_occupancy"} <= set(
            doc["buffers"][0])
        assert doc["partitions"] and "reorder_max_depth" in doc["partitions"][0]
        assert doc["trace"]["events_emitted"] > 0

    def test_json_serializable_and_stable(self):
        # host_profile is wall clock — the only non-deterministic section.
        da, db = run_traced().metrics_dict(), run_traced().metrics_dict()
        da.pop("host_profile"), db.pop("host_profile")
        assert json.dumps(da, sort_keys=True) == json.dumps(db, sort_keys=True)


class TestCLI:
    def test_run_with_metrics_and_trace(self, tmp_path, capsys):
        mpath = str(tmp_path / "m.json")
        tpath = str(tmp_path / "t.jsonl")
        rc = main(["run", "--workload", "microbench:64", "--arch", "dab",
                   "--preset", "tiny", "--metrics-json", mpath,
                   "--trace", tpath])
        assert rc == 0
        doc = json.loads(open(mpath).read())
        assert doc["schema"] == "repro.metrics/v3" and doc["metrics"]
        lines = [json.loads(l) for l in open(tpath) if l.strip()]
        assert lines and all("cycle" in l and "cat" in l for l in lines)

    def test_run_metrics_to_stdout(self, capsys):
        rc = main(["run", "--workload", "microbench:64", "--arch", "dab",
                   "--preset", "tiny", "--metrics-json", "-"])
        assert rc == 0
        out = capsys.readouterr().out
        assert '"schema": "repro.metrics/v3"' in out

    def test_trace_subcommand_views(self, capsys):
        rc = main(["trace", "--workload", "microbench:64", "--arch", "dab",
                   "--preset", "tiny"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "events retained" in out
        assert "flush #" in out
        assert "buffer occupancy" in out

    def test_trace_category_filter_validated(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "microbench:64", "--preset", "tiny",
                  "--trace", "/tmp/x.jsonl", "--trace-categories", "bogus"])

    def test_audit_trace_digest(self, capsys):
        rc = main(["audit", "--workload", "microbench:64", "--preset",
                   "tiny", "--seeds", "1,2", "--trace-digest"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IDENTICAL" in out and "DIVERGED" not in out
