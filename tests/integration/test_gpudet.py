"""Integration tests for the GPUDet baseline (quanta, modes, costs)."""

import numpy as np
import pytest

from repro.arch.isa import assemble
from repro.arch.kernel import Kernel
from repro.config import GPUConfig
from repro.gpudet.gpudet import GPUDetConfig
from repro.memory.globalmem import GlobalMemory
from repro.sim.gpu import GPU
from repro.sim.nondet import JitterSource
from tests.integration.conftest import run_sum


class TestModes:
    def test_mode_cycles_sum_to_total(self):
        res, _, _ = run_sum(n=512, gpudet=GPUDetConfig())
        total = sum(res.gpudet_mode_cycles.values())
        assert total == pytest.approx(res.cycles, abs=2)

    def test_atomic_heavy_workload_is_serial_dominated(self):
        # The Fig 3 shape: atomics force serial mode to dominate.
        res, _, _ = run_sum(n=1024, gpudet=GPUDetConfig(),
                            config=GPUConfig.small())
        modes = res.gpudet_mode_cycles
        assert modes["serial"] > modes["commit"]
        assert modes["serial"] > 0.2 * res.cycles

    def test_store_only_kernel_never_enters_serial(self):
        mem = GlobalMemory()
        b = mem.alloc("out", 64, "f32")
        prog = assemble("""
            mov.s32 r_t, %gtid
            shl.s32 r_o, r_t, 2
            add.s32 r_a, c_out, r_o
            cvt.f32.s32 r_v, r_t
            st.global.f32 [r_a], r_v
            exit
        """)
        gpu = GPU(GPUConfig.tiny(), mem, gpudet=GPUDetConfig(),
                  jitter=JitterSource(1))
        gpu.launch(Kernel("st", prog, grid_dim=2, cta_dim=32,
                          params={"c_out": b}))
        res = gpu.run()
        # stores still committed correctly
        assert (mem.buffer("out") == np.arange(64, dtype=np.float32)).all()

    def test_gpudet_slower_than_baseline_on_atomics(self):
        base, _, _ = run_sum(n=1024, config=GPUConfig.small())
        det, _, _ = run_sum(n=1024, gpudet=GPUDetConfig(),
                            config=GPUConfig.small())
        assert det.cycles > base.cycles

    def test_smaller_quantum_means_more_commits(self):
        r_small, _, _ = run_sum(n=512, gpudet=GPUDetConfig(quantum_instrs=8))
        r_big, _, _ = run_sum(n=512, gpudet=GPUDetConfig(quantum_instrs=500))
        assert r_small.cycles >= r_big.cycles


class TestStoreBufferSemantics:
    def test_loads_see_own_stores_within_quantum(self):
        mem = GlobalMemory()
        b = mem.alloc("buf", 32, "f32")
        b_out = mem.alloc("out", 32, "f32")
        prog = assemble("""
            mov.s32 r_t, %gtid
            shl.s32 r_o, r_t, 2
            add.s32 r_a, c_buf, r_o
            mov.f32 r_v, 7.5
            st.global.f32 [r_a], r_v
            ld.global.f32 r_w, [r_a]
            add.s32 r_b, c_out, r_o
            st.global.f32 [r_b], r_w
            exit
        """)
        gpu = GPU(GPUConfig.tiny(), mem, gpudet=GPUDetConfig(),
                  jitter=JitterSource(1))
        gpu.launch(Kernel("rw", prog, grid_dim=1, cta_dim=32,
                          params={"c_buf": b, "c_out": b_out}))
        gpu.run()
        assert (mem.buffer("out") == np.float32(7.5)).all()

    def test_stores_commit_at_quantum_boundary(self):
        res, value, data = run_sum(n=256, gpudet=GPUDetConfig())
        ref = float(np.sum(data.astype(np.float64)))
        assert value == pytest.approx(ref, rel=1e-2, abs=1e-2)

    def test_returning_atomics_work_in_serial_mode(self):
        mem = GlobalMemory()
        b = mem.alloc("ctr", 1, "s32")
        b_out = mem.alloc("out", 32, "s32")
        prog = assemble("""
            atom.global.add.s32 r_old, [c_ctr], 1
            mov.s32 r_t, %gtid
            shl.s32 r_o, r_t, 2
            add.s32 r_a, c_out, r_o
            st.global.s32 [r_a], r_old
            exit
        """)
        gpu = GPU(GPUConfig.tiny(), mem, gpudet=GPUDetConfig(),
                  jitter=JitterSource(1))
        gpu.launch(Kernel("ticket", prog, grid_dim=1, cta_dim=32,
                          params={"c_ctr": b, "c_out": b_out}))
        gpu.run()
        # every lane got a unique ticket 0..31
        assert sorted(mem.buffer("out")) == list(range(32))
        assert mem.buffer("ctr")[0] == 32

    def test_barrier_releases_after_commit(self):
        mem = GlobalMemory()
        b = mem.alloc("buf", 64, "f32")
        b_out = mem.alloc("res", 64, "f32")
        prog = assemble("""
            mov.s32 r_t, %tid
            shl.s32 r_o, r_t, 2
            add.s32 r_a, c_buf, r_o
            cvt.f32.s32 r_v, r_t
            st.global.f32 [r_a], r_v
            bar.sync
            mov.s32 r_u, 63
            sub.s32 r_u, r_u, r_t
            shl.s32 r_uo, r_u, 2
            add.s32 r_ua, c_buf, r_uo
            ld.global.f32 r_w, [r_ua]
            add.s32 r_ra, c_res, r_o
            st.global.f32 [r_ra], r_w
            exit
        """)
        gpu = GPU(GPUConfig.tiny(), mem, gpudet=GPUDetConfig(),
                  jitter=JitterSource(1))
        gpu.launch(Kernel("bar", prog, grid_dim=1, cta_dim=64,
                          params={"c_buf": b, "c_res": b_out}))
        gpu.run()
        expect = np.arange(63, -1, -1, dtype=np.float32)
        # cross-warp visibility through the commit: exact values
        assert (mem.buffer("res") == expect).all()
