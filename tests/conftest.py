"""Repo-wide pytest options."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden conformance snapshots under tests/golden/ "
             "from the current reference oracle instead of asserting "
             "against them",
    )
