#!/usr/bin/env python3
"""Graph analytics on a deterministic GPU: Betweenness Centrality and
PageRank (the paper's Pannotia workloads).

Demonstrates:

* running push-based BC and PageRank (host-driven multi-kernel loops)
  on the simulated GPU;
* validating results against host float64 references;
* that the baseline GPU's BC/PageRank scores drift across runs while
  DAB's are bitwise stable;
* comparing DAB's determinism-aware schedulers on the graph workloads
  (the paper's Fig 11(a) view).

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro import DABConfig, GPU, GPUConfig, JitterSource
from repro.harness.report import Table
from repro.workloads.bc import bc_reference, build_bc
from repro.workloads.graphs import generate
from repro.workloads.pagerank import build_pagerank, pagerank_reference


def run(workload, dab=None, seed=1):
    gpu = GPU(GPUConfig.small(), workload.mem, dab=dab,
              jitter=JitterSource(seed, dram_max=48, icnt_max=24))
    return workload.drive(gpu)


def main() -> None:
    graph = generate("FA", scale=32, seed=7)
    print(f"Graph 'FA' (scaled 1/{graph.scale}): "
          f"{graph.num_nodes} nodes, {graph.num_edges} edges "
          f"(paper: {graph.spec.paper_nodes} nodes, "
          f"{graph.spec.paper_edges} edges)")

    # --- Betweenness Centrality ----------------------------------------
    print("\nBetweenness Centrality (push-based, atomic sigma/delta)")
    wl = build_bc(graph)
    res = run(wl)
    d_ref, sigma_ref, delta_ref = bc_reference(graph)
    ok_d = np.array_equal(wl.mem.buffer("d"), d_ref)
    ok_sigma = np.allclose(wl.mem.buffer("sigma"), sigma_ref, rtol=1e-3)
    print(f"  {res.summary()}")
    print(f"  BFS depths match reference: {ok_d}; sigma close: {ok_sigma}")

    digests = set()
    for seed in (1, 2, 3, 4):
        wl = build_bc(graph)
        run(wl, seed=seed)
        digests.add(wl.output_digest())
    print(f"  baseline BC digests across 4 runs: {len(digests)} distinct")

    digests = set()
    for seed in (1, 2, 3, 4):
        wl = build_bc(graph)
        run(wl, dab=DABConfig.paper_default(), seed=seed)
        digests.add(wl.output_digest())
    print(f"  DAB BC digests across 4 runs:      {len(digests)} distinct")

    # --- PageRank -------------------------------------------------------
    print("\nPageRank (push-based, heaviest atomics PKI in Table II)")
    pgraph = generate("coA", scale=2048, seed=7)
    wl = build_pagerank(pgraph, iterations=3)
    res = run(wl)
    ref = pagerank_reference(pgraph, 3)
    got = wl.mem.buffer(wl.info["final_buffer"]).astype(np.float64)
    print(f"  {res.summary()}")
    print(f"  close to float64 reference: {np.allclose(got, ref, rtol=1e-3)}")
    top = np.argsort(got)[::-1][:5]
    print(f"  top-5 ranked nodes: {[int(i) for i in top]}")

    # --- Scheduler comparison (Fig 11a view) -----------------------------
    print("\nScheduler comparison on BC (normalized to baseline):")
    t = Table("DAB schedulers on BC FA", ["scheduler", "slowdown"])
    wl = build_bc(graph)
    base = run(wl).cycles
    for sched in ("srr", "gtrr", "gtar", "gwat"):
        wl = build_bc(graph)
        r = run(wl, dab=DABConfig(buffer_entries=256, scheduler=sched))
        t.add_row(sched.upper(), r.cycles / base)
    print(t)


if __name__ == "__main__":
    main()
