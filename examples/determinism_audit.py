#!/usr/bin/env python3
"""Determinism audit: compare all three architectures side by side.

For the Section V validation benchmark (output highly sensitive to
atomic order), runs baseline / DAB / GPUDet across jitter seeds and
reports:

* bitwise output digests (the determinism check);
* execution time relative to the baseline;
* for GPUDet, the execution-mode breakdown (the Fig 3 view);
* for DAB, the scheduler-slot overhead breakdown (the Fig 15 view).

Run:  python examples/determinism_audit.py
"""

from repro import DABConfig, GPU, GPUConfig, GPUDetConfig, JitterSource
from repro.harness.report import Table
from repro.workloads.microbench import build_order_sensitive

SEEDS = (1, 2, 3, 4, 5)


def run_variant(label, dab=None, gpudet=None):
    digests = set()
    last = None
    for seed in SEEDS:
        wl = build_order_sensitive(n=1024)
        gpu = GPU(GPUConfig.small(), wl.mem, dab=dab, gpudet=gpudet,
                  jitter=JitterSource(seed, dram_max=48, icnt_max=24))
        last = wl.drive(gpu)
        digests.add(wl.output_digest())
    return digests, last


def main() -> None:
    variants = [
        ("baseline", None, None),
        ("DAB", DABConfig.paper_default(), None),
        ("GPUDet", None, GPUDetConfig()),
    ]
    t = Table(
        f"Determinism audit over {len(SEEDS)} jitter seeds "
        "(order-sensitive reduction, 1024 elements)",
        ["architecture", "distinct digests", "deterministic", "cycles",
         "vs baseline"],
    )
    rows = {}
    for label, dab, gpudet in variants:
        digests, res = run_variant(label, dab, gpudet)
        rows[label] = (digests, res)
    base_cycles = rows["baseline"][1].cycles
    for label, (digests, res) in rows.items():
        t.add_row(label, len(digests), len(digests) == 1, res.cycles,
                  res.cycles / base_cycles)
    print(t)

    det = rows["GPUDet"][1]
    total = max(1, sum(det.gpudet_mode_cycles.values()))
    print("\nGPUDet mode breakdown (Fig 3 view):")
    for mode in ("parallel", "commit", "serial"):
        frac = det.gpudet_mode_cycles.get(mode, 0) / total
        print(f"  {mode:9s} {frac:6.1%}")

    dab = rows["DAB"][1]
    print("\nDAB scheduler-slot breakdown (Fig 15 view):")
    d = dab.stalls.as_dict()
    total = max(1, dab.stalls.total)
    for key, value in sorted(d.items(), key=lambda kv: -kv[1]):
        if value:
            print(f"  {key:12s} {value / total:6.1%}")
    print(f"\n  determinism machinery overhead: "
          f"{dab.stalls.determinism_overhead_fraction():.1%} of issue slots")


if __name__ == "__main__":
    main()
