#!/usr/bin/env python3
"""Quickstart: see GPU non-determinism, then fix it with DAB.

Runs the paper's motivating scenario end to end:

1. Figure 1's base-10 rounding example — why reduction order matters.
2. An order-sensitive f32 reduction on the baseline GPU under several
   injected-timing seeds: the results differ bit for bit.
3. The same reduction under DAB (GWAT-64-AF-Coalescing): identical
   results for every seed, at a modest performance cost.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DABConfig, GPU, GPUConfig, GlobalMemory, JitterSource
from repro.arch.isa import assemble
from repro.arch.kernel import Kernel
from repro.fp.decimal_toy import figure1_example

SUM_KERNEL = assemble("""
    mov.s32 r_i, %gtid
    setp.ge.s32 p_done, r_i, c_n
@p_done bra DONE
    shl.s32 r_off, r_i, 2
    add.s32 r_addr, c_in, r_off
    ld.global.f32 r_v, [r_addr]
    red.global.add.f32 [c_out], r_v
DONE:
    exit
""")


def make_order_sensitive_data(n: int, seed: int = 3) -> np.ndarray:
    """Values spanning many binades: almost any reorder changes the sum."""
    rng = np.random.default_rng(seed)
    expo = rng.integers(-6, 7, size=n)
    sign = rng.choice([-1.0, 1.0], size=n)
    return (sign * rng.uniform(1, 2, n) * 2.0 ** expo).astype(np.float32)


def run_reduction(data: np.ndarray, jitter_seed: int, dab=None):
    """One simulated run; returns (f32 result, cycle count)."""
    n = len(data)
    mem = GlobalMemory()
    base_in = mem.alloc("in", n, "f32", init=data)
    base_out = mem.alloc("out", 1, "f32")
    kernel = Kernel(
        "sum", SUM_KERNEL, grid_dim=-(-n // 128), cta_dim=128,
        params={"c_in": base_in, "c_out": base_out, "c_n": n},
    )
    gpu = GPU(GPUConfig.small(), mem, dab=dab,
              jitter=JitterSource(jitter_seed, dram_max=48, icnt_max=24))
    gpu.launch(kernel)
    result = gpu.run()
    return float(mem.buffer("out")[0]), result.cycles


def main() -> None:
    print("=" * 64)
    print("1. Paper Figure 1 (base-10, 3 digits, round up):")
    ex = figure1_example()
    print(f"   a={ex['inputs'][0]}  b={ex['inputs'][1]}  c={ex['inputs'][2]}")
    print(f"   (a+b)+c = {ex['(a+b)+c']}    (b+c)+a = {ex['(b+c)+a']}")
    print(f"   -> same inputs, different results: {ex['differ']}")

    data = make_order_sensitive_data(2048)
    ref = float(np.sum(data.astype(np.float64)))
    seeds = (1, 2, 3, 4, 5)

    print("\n2. Baseline (non-deterministic) GPU, 5 runs of the same program:")
    base_cycles = None
    values = []
    for s in seeds:
        v, cycles = run_reduction(data, s)
        base_cycles = base_cycles or cycles
        values.append(v)
        print(f"   seed {s}: sum = {v!r}")
    print(f"   distinct results: {len(set(values))}  (float64 reference: {ref:.6f})")

    print("\n3. Same program under DAB (GWAT-64-AF-Coalescing):")
    dab_values = []
    dab_cycles = None
    for s in seeds:
        v, cycles = run_reduction(data, s, dab=DABConfig.paper_default())
        dab_cycles = dab_cycles or cycles
        dab_values.append(v)
        print(f"   seed {s}: sum = {v!r}")
    print(f"   distinct results: {len(set(dab_values))}")

    print("\nSummary")
    print(f"   baseline: {len(set(values))} distinct bitwise results "
          f"({base_cycles} cycles)")
    print(f"   DAB:      {len(set(dab_values))} distinct bitwise result "
          f"({dab_cycles} cycles, "
          f"{dab_cycles / base_cycles:.2f}x vs baseline)")
    assert len(set(dab_values)) == 1, "DAB must be deterministic!"


if __name__ == "__main__":
    main()
