#!/usr/bin/env python3
"""Deterministic CNN training step: backward-filter convolution.

The paper's machine-learning motivation: cuDNN's fast backward-filter
algorithm accumulates weight gradients with f32 atomics, so two training
runs of the same model can diverge.  This example:

* runs a scaled ResNet backward-filter layer (Table III shapes) and
  checks the gradient against a float64 reference;
* shows gradient drift on the baseline GPU vs bitwise stability on DAB;
* demonstrates the atomic-fusion and flush-coalescing optimizations,
  and the Fig 14 "SM gating" effect where *fewer* SMs run the 3x3
  layers *faster* because same-region CTAs can fuse.

Run:  python examples/convolution_training.py
"""

import numpy as np

from repro import DABConfig, GPU, GPUConfig, JitterSource
from repro.harness.report import Table
from repro.workloads.convolution import RESNET_LAYERS, build_conv


def run(workload, dab=None, config=None, seed=1):
    gpu = GPU(config or GPUConfig.small(), workload.mem, dab=dab,
              jitter=JitterSource(seed, dram_max=48, icnt_max=24))
    return workload.drive(gpu)


def main() -> None:
    layer = "cnv2_2"
    cfg = RESNET_LAYERS[layer]
    print(f"Layer {layer}: paper filter {cfg.paper_filter}, "
          f"scaled to {cfg.filter_elems} filter elements, "
          f"{cfg.regions} regions x {cfg.slices} CTAs")

    # Correctness against float64.
    wl = build_conv(layer)
    res = run(wl, dab=DABConfig.paper_default())
    got = wl.mem.buffer("dw").astype(np.float64)
    ok = np.allclose(got, wl.info["reference_f64"], rtol=1e-3, atol=1e-4)
    print(f"\n{res.summary()}")
    print(f"dW matches float64 reference: {ok}")

    # Gradient drift on baseline vs DAB.
    print("\nGradient determinism across 4 runs (bitwise digests):")
    for label, dab in (("baseline", None), ("DAB", DABConfig.paper_default())):
        digests = set()
        for seed in (1, 2, 3, 4):
            wl = build_conv(layer)
            run(wl, dab=dab, seed=seed)
            digests.add(wl.output_digest())
        print(f"  {label:8s}: {len(digests)} distinct gradient image(s)")

    # Optimizations (Fig 13/17 view).
    print("\nBuffer optimizations on the 1x1 squeeze layer (cnv2_1):")
    t = Table("cnv2_1 DAB variants (normalized to baseline)",
              ["variant", "slowdown", "fused atomics", "icnt packets"])
    base = run(build_conv("cnv2_1")).cycles
    for label, d in (
        ("GWAT-64", DABConfig(buffer_entries=64, scheduler="gwat")),
        ("GWAT-64-AF", DABConfig(buffer_entries=64, scheduler="gwat",
                                 fusion=True)),
        ("GWAT-64-AF-Coal", DABConfig.paper_default()),
    ):
        wl = build_conv("cnv2_1")
        r = run(wl, dab=d)
        t.add_row(label, r.cycles / base, r.fused_atomics, r.icnt_packets)
    print(t)

    # Fig 14: gating SMs.
    print("\nFig 14 effect — gate 8 SMs down to 6 so same-region CTAs")
    print("share a scheduler (3x3 layer, 4 warps/CTA variant):")
    dab = DABConfig(buffer_entries=64, scheduler="gwat", fusion=True)
    full = GPUConfig.small()
    gated = full.replace(num_clusters=3)
    wl = build_conv("cnv2_2g")
    base = run(wl).cycles
    wl = build_conv("cnv2_2g")
    r_full = run(wl, dab=dab, config=full)
    wl = build_conv("cnv2_2g")
    r_gated = run(wl, dab=dab, config=gated)
    print(f"  {full.num_sms} SMs: {r_full.cycles / base:.3f}x "
          f"(fused atomics: {r_full.fused_atomics})")
    print(f"  {gated.num_sms} SMs: {r_gated.cycles / base:.3f}x "
          f"(fused atomics: {r_gated.fused_atomics})  <- fewer SMs, faster")


if __name__ == "__main__":
    main()
