#!/usr/bin/env python
"""CI gate: two identical traced runs must produce bitwise-identical JSONL.

Runs the same (workload, arch, seed) twice with event tracing enabled,
writes both traces, and compares the files byte-for-byte plus their
SHA-256 digests.  Any divergence means a nondeterministic quantity
(host time, ``id()``, unordered iteration) leaked into the simulator or
the trace payloads — the bug class this repo exists to eliminate.

Usage::

    PYTHONPATH=src python scripts/check_trace_determinism.py
    PYTHONPATH=src python scripts/check_trace_determinism.py \
        --workload microbench:256 --arch baseline --seed 7

Exit status: 0 identical, 1 diverged.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.cli import PRESETS, parse_arch, parse_workload
from repro.harness.runner import run_workload
from repro.obs import ObsConfig


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--workload", default="microbench:256")
    p.add_argument("--arch", default="dab",
                   choices=["baseline", "dab", "gpudet"])
    p.add_argument("--preset", default="tiny", choices=list(PRESETS))
    p.add_argument("--seed", type=int, default=1)
    # parse_arch reads the full `run` flag set; supply the defaults.
    p.add_argument("--scheduler", default="gwat",
                   choices=["srr", "gtrr", "gtar", "gwat"])
    p.add_argument("--entries", type=int, default=64)
    p.add_argument("--fusion", action="store_true")
    p.add_argument("--coalescing", action="store_true")
    p.add_argument("--offset", action="store_true")
    p.add_argument("--warp-level", action="store_true")
    p.add_argument("--quantum", type=int, default=200)
    args = p.parse_args(argv)

    factory = parse_workload(args.workload)
    arch = parse_arch(args)
    config = PRESETS[args.preset]()
    obs = ObsConfig(trace=True, trace_capacity=0)

    digests, paths = [], []
    with tempfile.TemporaryDirectory() as tmp:
        for i in (1, 2):
            res = run_workload(factory, arch, gpu_config=config,
                               seed=args.seed, obs=obs)
            path = Path(tmp) / f"trace{i}.jsonl"
            res.obs.tracer.write_jsonl(str(path))
            digests.append(res.obs.tracer.digest())
            paths.append(path)
            print(f"run {i}: {len(res.obs.tracer)} events, "
                  f"digest {digests[-1][:16]}…")
        same_bytes = paths[0].read_bytes() == paths[1].read_bytes()

    if digests[0] == digests[1] and same_bytes:
        print(f"OK: {args.workload} on {arch.label} traces are "
              "bitwise-identical across runs")
        return 0
    print(f"FAIL: {args.workload} on {arch.label} traces diverged "
          f"({digests[0][:16]}… vs {digests[1][:16]}…)", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
