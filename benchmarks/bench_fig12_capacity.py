"""Fig 12: GWAT buffer-capacity sweep (32/64/128/256).

Paper shape: graphs generally improve with capacity (fewer full-buffer
stalls); convolutions are mostly insensitive (fixed atomic count, only
flush frequency changes).
"""

from repro.harness.report import geomean

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import fig12_capacity


def test_fig12_capacity(benchmark):
    table = run_once(benchmark, fig12_capacity)
    record_table("fig12_capacity", table)
    d = table.data
    graphs = {n: r for n, r in d.items() if n.startswith(("BC", "PRK"))}
    gm32 = geomean([r[32] for r in graphs.values()])
    gm256 = geomean([r[256] for r in graphs.values()])
    assert gm256 <= gm32  # bigger buffers help graphs overall
