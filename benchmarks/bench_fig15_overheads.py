"""Fig 15: where DAB's cycles go — scheduler-slot breakdown."""

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import fig15_overheads


def test_fig15_overheads(benchmark):
    table = run_once(benchmark, fig15_overheads)
    record_table("fig15_overheads", table)
    for name, fr in table.data.items():
        total = sum(fr.values())
        assert 0.99 < total < 1.01, name
        assert fr["issued"] > 0, name
