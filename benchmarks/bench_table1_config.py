"""Table I: the GPGPU-Sim configuration, paper values vs scaled preset."""

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import table1_config


def test_table1_config(benchmark):
    table = run_once(benchmark, table1_config)
    record_table("table1_config", table)
    d = table.data
    assert d["# Streaming Multiprocessors (SM)"] == 80
    assert d["Max Warps / SM"] == 64
    assert d["Number of Warp Schedulers / SM"] == 4
    assert d["L2 Unified Cache (bytes)"] == int(4.5 * 1024 * 1024)
