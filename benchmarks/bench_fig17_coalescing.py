"""Fig 17: coalescing buffer flushes on convolutions.

Paper shape: ~13% geomean improvement from coalescing same-sector
entries into single transactions (strided conv atomics coalesce well).
"""

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import fig17_coalescing


def test_fig17_coalescing(benchmark):
    table = run_once(benchmark, fig17_coalescing)
    record_table("fig17_coalescing", table)
    gm = table.data["geomean"]
    assert gm["coal"] < gm["plain"], "coalescing should help convs overall"
    # traffic reduction is the mechanism
    layers = [r for n, r in table.data.items() if n != "geomean"]
    assert all(r["pkts_coal"] < r["pkts_plain"] for r in layers)
