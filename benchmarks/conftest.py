"""Benchmark harness glue.

Every benchmark regenerates one paper table/figure.  Simulation runs are
deterministic and expensive, so each measurement executes exactly once
(``rounds=1``) inside pytest-benchmark, and each experiment's table is
printed and archived under ``benchmarks/results/``.
"""

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_table(name: str, table) -> None:
    """Print the regenerated table and archive it (.txt + .json).

    The JSON twin carries the structured rows so figures can be
    re-plotted without re-simulating or scraping the text rendering.
    """
    text = table.render() if hasattr(table, "render") else str(table)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    doc = {"name": name}
    if hasattr(table, "columns") and hasattr(table, "rows"):
        doc.update(title=table.title, columns=list(table.columns),
                   rows=[list(r) for r in table.rows])
    else:
        doc["text"] = text
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True, default=str) + "\n"
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
