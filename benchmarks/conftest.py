"""Benchmark harness glue.

Every benchmark regenerates one paper table/figure.  Simulation runs are
deterministic and expensive, so each measurement executes exactly once
(``rounds=1``) inside pytest-benchmark, and each experiment's table is
printed and archived under ``benchmarks/results/``.
"""

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_table(name: str, table) -> None:
    """Print the regenerated table and archive it (.txt + .json).

    The JSON twin carries the structured rows so figures can be
    re-plotted without re-simulating or scraping the text rendering.
    """
    text = table.render() if hasattr(table, "render") else str(table)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    doc = {"name": name}
    if hasattr(table, "columns") and hasattr(table, "rows"):
        doc.update(title=table.title, columns=list(table.columns),
                   rows=[list(r) for r in table.rows])
    else:
        doc["text"] = text
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True, default=str) + "\n"
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def pytest_addoption(parser):
    group = parser.getgroup("sweep", "sweep-engine execution")
    group.addoption("--jobs", type=int, default=None, metavar="N",
                    help="worker processes for experiment sweeps "
                         "(default: all CPUs; 1 = in-process)")
    group.addoption("--no-cache", action="store_true",
                    help="bypass the content-addressed result cache")
    group.addoption("--cache-dir", default=None, metavar="DIR",
                    help="result-cache directory "
                         "(default: benchmarks/results/cache)")


@pytest.fixture(scope="session", autouse=True)
def _sweep_config(request):
    """Point the sweep engine at the pytest command-line knobs."""
    from repro.harness import sweep

    jobs = request.config.getoption("--jobs")
    if jobs is None:
        jobs = os.cpu_count() or 1
    with sweep.configured(
        jobs=jobs,
        cache=not request.config.getoption("--no-cache"),
        cache_dir=request.config.getoption("--cache-dir"),
    ):
        yield


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
