"""Benchmark harness glue.

Every benchmark regenerates one paper table/figure.  Simulation runs are
deterministic and expensive, so each measurement executes exactly once
(``rounds=1``) inside pytest-benchmark, and each experiment's table is
printed and archived under ``benchmarks/results/``.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_table(name: str, table) -> None:
    """Print the regenerated table and archive it."""
    text = table.render() if hasattr(table, "render") else str(table)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
