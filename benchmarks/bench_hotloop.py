"""Hot-loop engine benchmark: event-driven issue vs per-cycle polling.

Runs the Fig 10 quick workload set under the three architectures at the
paper-scale GPU configuration (``GPUConfig.titan_v``: 80 SMs) under
both engines — the event-driven SoA fastpath (default) and the
per-cycle polling reference (``REPRO_NO_FASTPATH=1``) — asserts the two
produce identical memory digests, cycle counts, and metrics, and
appends the timing ratios to ``benchmarks/results/BENCH_hotloop.json``.

The Fig 10 experiment tables themselves run on ``GPUConfig.small`` for
CI speed; the hot-loop cost being eliminated here (per-cycle scheduler
scans, flush-gate polling, GPUDet quantum scans) grows with SM count,
so the engine comparison is made at the scale the paper models.  Each
cell is timed on engine-only wall clock (``SimResult.sim_wall_s``:
inside ``GPU.run``, excluding workload build and result digesting,
which are identical for both engines), best of ``BENCH_REPEATS`` runs
— both engines are deterministic, so the minimum is the least-noise
estimate on a frequency-scaling host.  The headline is the DAB geomean
— DAB is the paper's architecture, and its flush controller is the
subsystem the polling loop re-examines every cycle (locally ~3.0x with
the SoA warp core, up from ~2.6x for the PR 5 event engine; baseline
and GPUDet cells run ~1.2-1.4x because their remaining cost is
instruction execution shared by both engines).  The committed floors
(DAB 1.5x, baseline 1.1x) are set well under the local measurements to
tolerate noisy CI machines.

Runnable directly (``python benchmarks/bench_hotloop.py``) or under
pytest with the rest of the benchmark suite.
"""

import json
import math
import os
import pathlib

from repro.config import GPUConfig
from repro.core.dab import DABConfig
from repro.harness.runner import ArchSpec, run_workload
from repro.resilience.integrity import atomic_write_text
from repro.workloads.bc import build_bc
from repro.workloads.convolution import build_conv
from repro.workloads.pagerank import build_pagerank

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_hotloop.json"
BENCH_SCHEMA = "repro.bench_hotloop/v1"

#: Committed CI floor for the DAB geomean speedup (headline target: 3x;
#: see module docstring for the local measurement).
DAB_GEOMEAN_FLOOR = 1.5
#: Committed CI floor for the baseline-architecture geomean: the SoA
#: warp core must pay for itself even where there is no flush
#: controller to skip (the conservative floor tolerates noisy CI; see
#: the module docstring for the local measurement).
BASELINE_GEOMEAN_FLOOR = 1.1
#: Timed repetitions per (arch, workload, engine) cell; the reported
#: time is the best of N.  Single-shot timings on a loaded or
#: frequency-scaling host swing by tens of percent, and since both
#: engines are deterministic the minimum is the least-noise estimate.
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))

# Fig 10 quick workload set (experiments.graph_workloads/conv_workloads
# with quick=True), built directly so the bench controls the GPU config.
WORKLOADS = [
    ("BC 1k", lambda: build_bc(graph="1k", scale=32)),
    ("BC FA", lambda: build_bc(graph="FA", scale=32)),
    ("PRK coA", lambda: build_pagerank(graph="coA", scale=2048,
                                       iterations=1)),
    ("cnv2_1", lambda: build_conv("cnv2_1")),
    ("cnv2_2", lambda: build_conv("cnv2_2")),
]

ARCHES = [
    ("baseline", ArchSpec.baseline()),
    ("DAB", ArchSpec.make_dab(
        DABConfig(buffer_entries=64, scheduler="gwat", fusion=True,
                  coalescing=True), "DAB")),
    ("GPUDet", ArchSpec.make_gpudet()),
]


def _run_cell(factory, arch, fastpath):
    if fastpath:
        os.environ.pop("REPRO_NO_FASTPATH", None)
    else:
        os.environ["REPRO_NO_FASTPATH"] = "1"
    try:
        best = math.inf
        for _ in range(BENCH_REPEATS):
            res = run_workload(factory, arch,
                               gpu_config=GPUConfig.titan_v(), seed=1)
            # Engine-only wall time: excludes workload construction and
            # result digesting, which are identical for both engines and
            # would only dilute the comparison toward 1x.
            best = min(best, res.sim_wall_s)
    finally:
        os.environ.pop("REPRO_NO_FASTPATH", None)
    metrics = res.metrics_dict()
    metrics.pop("host_profile", None)
    return best, {"mem_digest": res.mem_digest, "cycles": res.cycles,
                  "metrics": metrics}


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_hotloop():
    cells = []
    for aname, arch in ARCHES:
        for wname, factory in WORKLOADS:
            t_fast, out_fast = _run_cell(factory, arch, fastpath=True)
            t_poll, out_poll = _run_cell(factory, arch, fastpath=False)
            if out_fast != out_poll:
                raise AssertionError(
                    f"engine divergence on {aname}/{wname}: "
                    f"fast={out_fast['mem_digest']} "
                    f"poll={out_poll['mem_digest']}"
                )
            cells.append({
                "arch": aname,
                "workload": wname,
                "poll_s": round(t_poll, 4),
                "fast_s": round(t_fast, 4),
                "speedup": round(t_poll / t_fast, 3),
            })
            print(f"{aname:9s} {wname:8s} poll={t_poll:6.3f}s "
                  f"fast={t_fast:6.3f}s  {t_poll / t_fast:5.2f}x")
    geomeans = {
        aname: round(_geomean([c["speedup"] for c in cells
                               if c["arch"] == aname]), 3)
        for aname, _ in ARCHES
    }
    for aname, gm in geomeans.items():
        print(f"geomean {aname}: {gm:.2f}x")
    return {
        "gpu_config": "titan_v",
        "cells": cells,
        "geomean": geomeans,
        "headline_dab_geomean": geomeans["DAB"],
    }


def _append_run(entry):
    doc = {"schema": BENCH_SCHEMA, "runs": []}
    if BENCH_PATH.exists():
        try:
            prev = json.loads(BENCH_PATH.read_text())
            if prev.get("schema") == BENCH_SCHEMA:
                doc = prev
        except ValueError:
            pass  # corrupt history: start a fresh trajectory
    doc["runs"].append(entry)
    RESULTS_DIR.mkdir(exist_ok=True)
    # write-temp-then-rename: a crash mid-emit must never leave a torn
    # BENCH file that loses the whole accumulated trajectory.
    atomic_write_text(BENCH_PATH,
                      json.dumps(doc, indent=2, sort_keys=True) + "\n")
    # Mirror the entry into the persistent run database so the campaign
    # dashboard plots the trajectory; the JSON file stays the canonical
    # emit and a db hiccup must never fail the benchmark.
    try:
        from repro.campaign.rundb import RunDB

        with RunDB(RESULTS_DIR / "runs.db") as db:
            db.record_bench("hotloop", len(doc["runs"]) - 1, entry)
    except Exception as e:  # noqa: BLE001 - telemetry only
        print(f"warning: run-db append skipped ({e})")


def test_hotloop_speed():
    entry = run_hotloop()
    _append_run(entry)
    assert entry["headline_dab_geomean"] >= DAB_GEOMEAN_FLOOR
    assert entry["geomean"]["baseline"] >= BASELINE_GEOMEAN_FLOOR
    # Never a pessimization: every cell within noise of the old engine.
    for c in entry["cells"]:
        assert c["speedup"] >= 0.8, c


if __name__ == "__main__":
    test_hotloop_speed()
    print(f"ok: wrote {BENCH_PATH}")
