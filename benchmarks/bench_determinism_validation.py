"""Section V validation: bitwise digests across jitter seeds for the
order-sensitive benchmark — baseline varies, DAB and GPUDet do not."""

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import determinism_validation


def test_determinism_validation(benchmark):
    table = run_once(benchmark, determinism_validation)
    record_table("determinism_validation", table)
    d = table.data
    assert not d["baseline"]["deterministic"], (
        "baseline should scramble the order-sensitive sum under jitter"
    )
    for label, row in d.items():
        if label == "baseline":
            continue
        assert row["deterministic"], label
