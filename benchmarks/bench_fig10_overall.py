"""Fig 10: headline result — DAB (GWAT-64-AF-Coalescing) vs GPUDet,
normalized to the non-deterministic baseline.

Paper shape: DAB ~1.23x geomean slowdown; GPUDet 2-4x; DAB beats GPUDet
on every workload.
"""

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import fig10_overall


def test_fig10_overall(benchmark):
    table = run_once(benchmark, fig10_overall)
    record_table("fig10_overall", table)
    d = table.data
    gm = d.pop("geomean")
    # headline numbers: DAB modest slowdown, GPUDet severe
    assert gm["DAB"] < 1.6
    assert gm["GPUDet"] > 1.5
    assert gm["DAB"] < gm["GPUDet"]
    # DAB wins or ties GPUDet on every workload
    for name, row in d.items():
        assert row["DAB"] <= row["GPUDet"] * 1.05, name
