"""Fig 14: "gating" SMs so same-region conv CTAs share a scheduler.

Paper shape: running the 3x3 layers on fewer cores (72 instead of 80;
here 6 instead of 8) *speeds them up* because atomic fusion becomes
possible.
"""

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import fig14_gating


def test_fig14_gating(benchmark):
    table = run_once(benchmark, fig14_gating)
    record_table("fig14_gating", table)
    for layer, row in table.data.items():
        assert row["fused_full"] == 0, layer
        assert row["fused_gated"] > 0, layer
        assert row["gated"] < row["full"], (
            f"{layer}: gated machine should win despite fewer SMs"
        )
