"""Fig 3: GPUDet execution-mode breakdown.

Paper shape: for atomic-intensive workloads GPUDet spends the majority
of its time in serial mode, and is 2-10x slower than the baseline.
"""

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import fig03_gpudet_modes


def test_fig03_gpudet_modes(benchmark):
    table = run_once(benchmark, fig03_gpudet_modes)
    record_table("fig03_gpudet_modes", table)
    for name, row in table.data.items():
        assert row["slowdown"] > 1.2, name
        assert row["serial"] > row["commit"], name
    # graphs: serial mode dominates (paper: "majority of the execution
    # time in serial mode")
    graph_rows = [r for n, r in table.data.items() if n.startswith(("BC", "PRK"))]
    assert any(r["serial"] > 0.4 for r in graph_rows)
