"""Fig 18: the limitation study — DAB with constraints relaxed.

Paper shape: relaxing reordering (NR), flush overlap (OF) and the
cross-cluster implicit barrier (CIF) progressively recovers
performance, with the cluster-independent flush usually the biggest
single win.
"""

from repro.harness.report import geomean

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import fig18_relaxed


def test_fig18_relaxed(benchmark):
    table = run_once(benchmark, fig18_relaxed)
    record_table("fig18_relaxed", table)
    d = table.data
    gm = {v: geomean([row[v] for row in d.values()])
          for v in ("DAB", "DAB-NR", "DAB-NR-OF", "DAB-NR-CIF")}
    assert gm["DAB-NR"] <= gm["DAB"] * 1.02
    assert gm["DAB-NR-CIF"] <= gm["DAB-NR"] * 1.02
