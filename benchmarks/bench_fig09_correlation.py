"""Fig 9: simulator IPC vs the hardware-model stand-in.

The paper reports 96.8% correlation / 32.5% error of GPGPU-Sim against
a real TITAN V.  We have no GPU (see DESIGN.md substitutions): the
reference is an analytic roofline model with fixed per-benchmark
perturbation, so this bench validates the correlation machinery and the
simulator's cross-benchmark ordering, not absolute fidelity.
"""

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import fig09_correlation


def test_fig09_correlation(benchmark):
    table = run_once(benchmark, fig09_correlation)
    record_table("fig09_correlation", table)
    assert table.data["correlation"] > 0.5
    assert table.data["error"] < 1.0
