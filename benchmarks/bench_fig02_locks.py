"""Fig 2: atomicAdd on DAB vs deterministic locking algorithms on the
non-deterministic baseline GPU, normalized to baseline atomicAdd.

Paper shape: all three lock algorithms are 1-2 orders of magnitude
slower than atomicAdd and the gap grows with array size (contention);
DAB's atomicAdd stays close to (here: at or below) the baseline.
Scale: arrays of 32-128 elements on the tiny machine (paper sweeps
larger arrays on the full TITAN V model).
"""

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import fig02_locks


def test_fig02_locks(benchmark):
    table = run_once(benchmark, fig02_locks)
    record_table("fig02_locks", table)
    data = table.data
    sizes = sorted(data)
    for n in sizes:
        row = data[n]
        # every lock much slower than atomicAdd
        for alg in ("ts", "ts_backoff", "tts"):
            assert row[alg] > 5.0, (n, alg, row[alg])
        # DAB atomicAdd stays within 2x of baseline atomicAdd
        assert row["DAB atomicAdd"] < 2.0
    # lock overhead grows with contention
    assert data[sizes[-1]]["ts"] > data[sizes[0]]["ts"]
