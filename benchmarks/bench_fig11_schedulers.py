"""Fig 11: determinism-aware scheduling policies (256-entry buffers),
normalized to baseline, on the scheduler-pressure ("narrow") machine.

Paper shape: SRR is the most restrictive; the relaxed policies
(GTRR/GTAR/GWAT) match or beat it, with GWAT best overall.
"""

from repro.harness.report import geomean

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import fig11_schedulers


def test_fig11_schedulers(benchmark):
    table = run_once(benchmark, fig11_schedulers)
    record_table("fig11_schedulers", table)
    d = table.data
    gm = {pol: geomean([row[pol] for row in d.values()])
          for pol in ("SRR", "GTRR", "GTAR", "GWAT")}
    assert gm["GWAT"] <= gm["SRR"] * 1.02
    assert gm["GTAR"] <= gm["SRR"] * 1.05
