"""Table II: graph datasets and measured atomics PKI.

Scale: synthetic graphs at recorded reductions of the paper datasets.
Shape target: PageRank (coA) has by far the highest atomics PKI; the
dense random graphs (1k/2k) are atomic-denser than amazon0302/CNR.
"""

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import table2_graphs


def test_table2_graphs(benchmark):
    table = run_once(benchmark, table2_graphs)
    record_table("table2_graphs", table)
    d = table.data
    assert d["coA"]["sim_pki"] == max(r["sim_pki"] for r in d.values())
    assert d["1k"]["sim_pki"] > d["ama"]["sim_pki"]
    assert d["1k"]["sim_pki"] > d["CNR"]["sim_pki"]
