"""Sweep-engine speed trajectory: serial vs parallel vs warm cache.

Measures the same job list three ways — serial cold, parallel cold, and
a warm re-run against a freshly-populated cache — asserts all three
produce identical results, and appends the timings to
``benchmarks/results/BENCH_sweep.json`` so speedups can be tracked
across commits.

Hard speedup assertions are gated on the machine: parallel fan-out
cannot beat serial on a single-core box, so the >=2x parallel check
only applies when ``os.cpu_count() >= 4``.  The warm-cache check
(>=5x) holds everywhere — a cache hit is a JSON read, not a
simulation.
"""

import json
import os
import tempfile
import time

from benchmarks.conftest import RESULTS_DIR
from repro.harness.runner import ArchSpec
from repro.harness.sweep import JobSpec, WorkloadRef, run_jobs
from repro.resilience.integrity import atomic_write_text

BENCH_PATH = RESULTS_DIR / "BENCH_sweep.json"
BENCH_SCHEMA = "repro.bench_sweep/v1"

#: Large enough that pool startup is amortized, small enough to keep
#: the benchmark suite quick (~0.5s serial on one core).
SIZES = (512, 1024, 2048, 4096)


def _specs():
    return [
        JobSpec(WorkloadRef("atomic_sum", (n,)), arch)
        for n in SIZES
        for arch in (ArchSpec.baseline(), ArchSpec.make_dab())
    ]


def _digests(results):
    return [r.extra["output_digest"] for r in results]


def _append_run(entry):
    doc = {"schema": BENCH_SCHEMA, "runs": []}
    if BENCH_PATH.exists():
        try:
            prev = json.loads(BENCH_PATH.read_text())
            if prev.get("schema") == BENCH_SCHEMA:
                doc = prev
        except ValueError:
            pass  # corrupt history: start a fresh trajectory
    doc["runs"].append(entry)
    # write-temp-then-rename: a crash mid-emit must never leave a torn
    # BENCH file that loses the whole accumulated trajectory.
    atomic_write_text(BENCH_PATH,
                      json.dumps(doc, indent=2, sort_keys=True) + "\n")
    # Mirror into the run database for the campaign dashboard (the JSON
    # stays canonical; a db hiccup must never fail the benchmark).
    try:
        from repro.campaign.rundb import RunDB

        with RunDB(RESULTS_DIR / "runs.db") as db:
            db.record_bench("sweep", len(doc["runs"]) - 1, entry)
    except Exception as e:  # noqa: BLE001 - telemetry only
        print(f"warning: run-db append skipped ({e})")


def test_sweep_speed(benchmark):
    specs = _specs()
    cpus = os.cpu_count() or 1

    t0 = time.perf_counter()
    serial = run_jobs(specs, jobs=1, cache=False)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_jobs(specs, jobs=4, cache=False)
    t_parallel = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as cache_dir:
        t0 = time.perf_counter()
        cold = run_jobs(specs, jobs=1, cache=True, cache_dir=cache_dir)
        t_cold_cached = time.perf_counter() - t0

        # benchmark times the headline number: the warm re-run.
        t0 = time.perf_counter()
        warm = benchmark.pedantic(
            run_jobs, args=(specs,),
            kwargs=dict(jobs=1, cache=True, cache_dir=cache_dir),
            rounds=1, iterations=1, warmup_rounds=0,
        )
        t_warm = time.perf_counter() - t0

    assert _digests(parallel) == _digests(serial)
    assert _digests(cold) == _digests(serial)
    assert _digests(warm) == _digests(serial)
    assert all(r.extra.get("cache_hit") for r in warm)
    assert not any(r.extra.get("cache_hit") for r in cold)

    parallel_speedup = t_serial / t_parallel
    warm_speedup = t_serial / t_warm
    entry = {
        "cpu_count": cpus,
        "jobs": 4,
        "num_specs": len(specs),
        "serial_s": round(t_serial, 3),
        "parallel_s": round(t_parallel, 3),
        "cold_cached_s": round(t_cold_cached, 3),
        "warm_s": round(t_warm, 3),
        "parallel_speedup": round(parallel_speedup, 2),
        "warm_speedup": round(warm_speedup, 2),
    }
    _append_run(entry)
    print(f"\nsweep speed: serial={t_serial:.2f}s parallel={t_parallel:.2f}s "
          f"warm={t_warm:.3f}s (x{warm_speedup:.0f}) on {cpus} CPU(s)")

    assert warm_speedup >= 5, entry
    if cpus >= 4:
        assert parallel_speedup >= 2, entry
