"""Fig 16: offset flushing on the expanding 1x1 conv layers.

Paper shape: offsetting the flush start index speeds up cnv2_3 (all
CTAs write the same addresses -> partition hotspot) and barely moves
cnv3_3.  DIVERGENCE AT OUR SCALE (documented in EXPERIMENTS.md): with 8
SMs / 4 partitions the deterministic round-robin commit makes each
partition wait for the slowest SM stream regardless of rotation, and
the scaled regions span too few cache lines for a moving hotspot to
form, so offset flushing is performance-neutral here.  The bench pins
the two properties that must still hold: offsetting never changes the
result (determinism) and its cost is ~zero.
"""

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import fig16_offset


def test_fig16_offset(benchmark):
    table = run_once(benchmark, fig16_offset)
    record_table("fig16_offset", table)
    for layer, row in table.data.items():
        assert row["offset"] <= row["plain"] * 1.1, layer
