"""Fig 1: the base-10, 3-digit rounding example (reduction-order
sensitivity).  Regenerates the exact numbers of the paper's figure."""

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import fig01_rounding


def test_fig01_rounding(benchmark):
    table = run_once(benchmark, fig01_rounding)
    record_table("fig01_rounding", table)
    assert table.data["(a+b)+c"] == "1.01"
    assert table.data["(b+c)+a"] == "1.00"
    assert table.data["differ"]
