"""Ablation: warp-level vs scheduler-level atomic buffering.

Paper Section VI-A: "Scheduler-level buffering performs similarly to
warp-level buffering but could reduce area overhead up to 16x" — the
design decision that motivates determinism-aware scheduling in the
first place.
"""

from repro.harness.report import geomean

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import ablation_buffer_level


def test_ablation_buffer_level(benchmark):
    table = run_once(benchmark, ablation_buffer_level)
    record_table("ablation_buffer_level", table)
    d = dict(table.data)
    area = d.pop("area_bytes_per_sm")
    # 16x area reduction (64 warps -> 4 schedulers)
    assert area["warp-level"] // area["scheduler-level"] == 16
    gw = geomean([r["warp-level"] for r in d.values()])
    gs = geomean([r["scheduler-level"] for r in d.values()])
    # "performs similarly": within ~20% of each other overall
    assert gs < gw * 1.2
