"""Fig 13: atomic fusion on scheduler-level buffering.

Paper shape: fusion helps graphs and the aligned 1x1 conv layers; the
3x3 layers see no benefit on the full machine (same-region CTAs never
share a scheduler -- the Fig 14 misalignment).
"""

from repro.harness.report import geomean

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import fig13_fusion


def test_fig13_fusion(benchmark):
    table = run_once(benchmark, fig13_fusion)
    record_table("fig13_fusion", table)
    d = table.data
    graphs = {n: r for n, r in d.items() if n.startswith(("BC", "PRK"))}
    gm = lambda key: geomean([r[key] for r in graphs.values()])
    assert gm("GWAT-32-AF") <= gm("GWAT-32")
    assert gm("GWAT-64-AF") <= gm("GWAT-64")
    # misaligned 3x3 layers: no fusion at all
    for name, row in d.items():
        if name.endswith("_2"):
            assert row["GWAT-64-AF_fused"] == 0, name
