"""Table III: ResNet backward-filter layer configurations + atomics PKI."""

from benchmarks.conftest import record_table, run_once
from repro.harness.experiments import table3_layers


def test_table3_layers(benchmark):
    table = run_once(benchmark, table3_layers)
    record_table("table3_layers", table)
    for name, row in table.data.items():
        assert row["sim_pki"] > 0, name
